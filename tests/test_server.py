"""The digital-twin service: HTTP API, job lifecycle, cache plane.

One real server (ephemeral port, private cache directory, stdlib urllib
client) is booted per module; every test drives it over actual sockets,
so the hand-rolled HTTP layer, the SSE stream and the Prometheus
exposition are all exercised end to end with no test doubles.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.spec import RunSpec
from repro.memory.presets import nvm_bandwidth_scaled
from repro.server import DigitalTwinServer, ServerConfig
from repro.server.http import AsyncHttpServer, HttpError, Request, _match

NVM = nvm_bandwidth_scaled(0.5)
TINY = {"grid": 4, "iterations": 2}


def tiny_spec(**changes) -> RunSpec:
    base = dict(
        workload="heat",
        policy="tahoe",
        nvm=NVM,
        fast=True,
        workload_overrides=TINY,
    )
    base.update(changes)
    return RunSpec(**base)


# ----------------------------------------------------------------------
# One live server per module
# ----------------------------------------------------------------------
class LiveServer:
    def __init__(self, tmp_path):
        self.cache = ResultCache(tmp_path / "cache")
        self.server = DigitalTwinServer(
            ServerConfig(port=0, workers=2, cache=self.cache)
        )
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def boot():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=boot, daemon=True)
        self.thread.start()
        assert started.wait(10)
        self.url = self.server.url

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.close(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)

    # -- stdlib client -------------------------------------------------
    def request(self, method: str, path: str, doc=None):
        data = None if doc is None else json.dumps(doc).encode("utf-8")
        req = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, self._body(resp)
        except urllib.error.HTTPError as exc:
            return exc.code, self._body(exc)

    @staticmethod
    def _body(resp):
        text = resp.read().decode("utf-8")
        if (resp.headers.get("Content-Type") or "").startswith("application/json"):
            return json.loads(text)
        return text

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, doc):
        return self.request("POST", path, doc)


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    server = LiveServer(tmp_path_factory.mktemp("twin"))
    yield server
    server.stop()


# ----------------------------------------------------------------------
# The cache plane: miss, hit, dedup
# ----------------------------------------------------------------------
class TestRunSubmission:
    def test_miss_then_hit(self, live):
        doc = tiny_spec(seed=101).to_dict()
        status, first = live.post("/v1/runs", {"spec": doc})
        assert status == 200
        assert first["status"] == "done"
        assert first["cached"] is False
        assert first["created"] is True
        assert first["result"]["ok"] is True
        assert first["result"]["makespan"] > 0

        status, second = live.post("/v1/runs", {"spec": doc})
        assert status == 200
        assert second["cached"] is True
        assert second["created"] is False
        assert second["key"] == first["key"]
        assert second["result"]["makespan"] == first["result"]["makespan"]

    def test_cache_survives_job_table(self, live):
        # A key the job table has never seen but the cache has: prime the
        # cache directly, then submit.
        spec = tiny_spec(seed=102)
        from repro.experiments.parallel import run_spec

        run_spec(spec, cache=live.cache)
        status, body = live.post("/v1/runs", {"spec": spec.to_dict()})
        assert status == 200
        assert body["cached"] is True
        assert body["result"]["cached"] is True

    def test_bare_spec_document_accepted(self, live):
        status, body = live.post("/v1/runs", tiny_spec(seed=103).to_dict())
        assert status == 200
        assert body["status"] == "done"

    def test_async_submit_and_poll(self, live):
        doc = tiny_spec(seed=104).to_dict()
        status, body = live.post("/v1/runs?wait=0", {"spec": doc})
        assert status in (200, 202)  # may already be done on a fast box
        key = body["key"]
        status, final = live.get(f"/v1/runs/{key}?wait=1")
        assert status == 200
        assert final["status"] == "done"
        assert final["result"]["ok"] is True

    def test_get_unknown_run_404(self, live):
        status, body = live.get("/v1/runs/deadbeef")
        assert status == 404
        assert "no such run" in body["error"]

    def test_list_runs(self, live):
        live.post("/v1/runs", {"spec": tiny_spec(seed=105).to_dict()})
        status, body = live.get("/v1/runs")
        assert status == 200
        keys = [j["key"] for j in body["jobs"]]
        assert keys == sorted(keys)
        assert body["stats"]["jobs"] == len(keys)
        assert all("result" not in j for j in body["jobs"])

    def test_crashing_spec_becomes_failed_job_not_dead_server(self, live):
        doc = tiny_spec(seed=106).to_dict()
        doc["workload"] = "no-such-workload"
        status, body = live.post("/v1/runs", {"spec": doc})
        assert status == 200
        assert body["status"] == "failed"
        assert body["result"]["ok"] is False
        assert body["result"]["error_type"]
        # Server still answers.
        status, _ = live.get("/healthz")
        assert status == 200


# ----------------------------------------------------------------------
# Events stream
# ----------------------------------------------------------------------
class TestEvents:
    def test_sse_stream_replays_to_terminal(self, live):
        doc = tiny_spec(seed=107).to_dict()
        _, submitted = live.post("/v1/runs", {"spec": doc})
        status, text = live.get(f"/v1/runs/{submitted['key']}/events")
        assert status == 200
        events = [
            json.loads(line[len("data: "):])
            for line in text.splitlines()
            if line.startswith("data: ")
        ]
        assert events, text
        assert [e["event"] for e in events][-1] == "done"
        assert events[-1]["ok"] is True
        assert all(e["key"] == submitted["key"] for e in events)

    def test_events_for_unknown_run_404(self, live):
        status, body = live.get("/v1/runs/deadbeef/events")
        assert status == 404


# ----------------------------------------------------------------------
# What-if
# ----------------------------------------------------------------------
class TestWhatIf:
    def test_whatif_by_key_with_alias_override(self, live):
        doc = tiny_spec(seed=108).to_dict()
        _, base = live.post("/v1/runs", {"spec": doc})
        status, body = live.post(
            "/v1/whatif",
            {
                "base": base["key"],
                "overrides": {"memory.dram_bytes": doc["dram_capacity"] * 2},
            },
        )
        assert status == 200
        assert body["spec_diff"] == {
            "dram_capacity": [doc["dram_capacity"], doc["dram_capacity"] * 2]
        }
        delta = body["delta"]
        for name in ("makespan", "migrations", "overlap", "energy.total_j"):
            assert name in delta
            row = delta[name]
            assert row["delta"] == pytest.approx(row["variant"] - row["base"])
        assert body["base"]["ok"] and body["variant"]["ok"]

    def test_whatif_with_inline_base(self, live):
        doc = tiny_spec(seed=109).to_dict()
        status, body = live.post(
            "/v1/whatif",
            {"base": doc, "overrides": {"workload_overrides.iterations": 3}},
        )
        assert status == 200
        assert body["spec_diff"] == {"workload_overrides.iterations": [2, 3]}

    def test_whatif_unknown_path_is_400_with_suggestion(self, live):
        doc = tiny_spec(seed=109).to_dict()
        status, body = live.post(
            "/v1/whatif", {"base": doc, "overrides": {"dram_capcity": 1}}
        )
        assert status == 400
        assert "did you mean" in body["error"]

    def test_whatif_missing_base_and_overrides(self, live):
        status, body = live.post("/v1/whatif", {"overrides": {"seed": 1}})
        assert status == 400
        assert "base" in body["error"]
        status, body = live.post("/v1/whatif", {"base": "deadbeef"})
        assert status == 400
        assert "overrides" in body["error"]
        status, body = live.post(
            "/v1/whatif", {"base": "deadbeef", "overrides": {"seed": 1}}
        )
        assert status == 404


# ----------------------------------------------------------------------
# Metrics + health
# ----------------------------------------------------------------------
class TestObservability:
    def test_metrics_exposition(self, live):
        live.post("/v1/runs", {"spec": tiny_spec(seed=110).to_dict()})
        status, text = live.get("/metrics")
        assert status == 200
        assert "# TYPE repro_server_cache_hits_total counter" in text
        assert "repro_server_cache_misses_total" in text
        assert "repro_server_cache_hit_ratio" in text
        assert "repro_server_queue_depth" in text
        assert 'repro_server_requests_total{method="POST"' in text

    def test_metrics_include_knapsack_cache(self, live):
        # The run above exercised the planner, so the scrape-time refresh
        # (export_cache_metrics) must surface the process-global solver
        # cache counters as labelled gauges.
        live.post("/v1/runs", {"spec": tiny_spec(seed=111).to_dict()})
        status, text = live.get("/metrics")
        assert status == 200
        assert "# TYPE repro_planner_knapsack_cache gauge" in text
        for stat in ("exact_hits", "solves", "warm_started_rows", "computed_rows"):
            assert f'repro_planner_knapsack_cache{{stat="{stat}"}}' in text
        assert 'repro_server_run_seconds_bucket{le="+Inf",phase="execute"}' in text

        def value(name):
            for line in text.splitlines():
                if line.startswith(name + " "):
                    return float(line.rsplit(" ", 1)[-1])
            raise AssertionError(name)

        hits, misses = (
            value("repro_server_cache_hits_total"),
            value("repro_server_cache_misses_total"),
        )
        assert misses >= 1
        assert value("repro_server_cache_hit_ratio") == pytest.approx(
            hits / (hits + misses)
        )

    def test_healthz(self, live):
        status, body = live.get("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["jobs"]["jobs"] >= 1
        assert body["cache"]["path"].endswith("cache")


# ----------------------------------------------------------------------
# HTTP layer edges (over the live socket)
# ----------------------------------------------------------------------
class TestHttpEdges:
    def test_unknown_endpoint_404(self, live):
        status, body = live.get("/v1/nope")
        assert status == 404

    def test_wrong_method_405(self, live):
        status, body = live.request("DELETE", "/v1/runs")
        assert status == 405
        assert "DELETE" in body["error"]

    def test_malformed_json_400(self, live):
        req = urllib.request.Request(
            live.url + "/v1/runs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30)
        assert exc_info.value.code == 400

    def test_non_spec_document_400(self, live):
        status, body = live.post("/v1/runs", {"spec": {"nope": 1}})
        assert status == 400
        assert "workload" in body["error"]

    def test_route_pattern_matching(self):
        from repro.server.http import _compile

        seg = _compile("/v1/runs/{key}/events")
        assert _match(seg, "/v1/runs/abc123/events") == {"key": "abc123"}
        assert _match(seg, "/v1/runs/abc123") is None
        assert _match(seg, "/v1/runs//events") is None

    def test_dispatch_distinguishes_404_and_405(self):
        server = AsyncHttpServer()

        async def handler(request):  # pragma: no cover - never awaited
            raise AssertionError

        server.route("GET", "/thing", handler)
        req = Request("POST", "/thing", {}, {}, b"")
        with pytest.raises(HttpError) as e:
            server._dispatch(req)
        assert e.value.status == 405
        req = Request("GET", "/other", {}, {}, b"")
        with pytest.raises(HttpError) as e:
            server._dispatch(req)
        assert e.value.status == 404


# ----------------------------------------------------------------------
# CLI verb
# ----------------------------------------------------------------------
class TestServeApiCli:
    def test_serve_api_boots_and_answers(self, tmp_path):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.cli", "serve-api",
                "--port", "0", "--workers", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            url = line.strip().rsplit(" ", 1)[-1]
            with urllib.request.urlopen(f"{url}/healthz", timeout=30) as resp:
                body = json.loads(resp.read())
            assert body["status"] == "ok"
        finally:
            proc.terminate()
            proc.wait(timeout=10)
