"""The what-if plane: RunSpec.diff / RunSpec.with_overrides.

The contract under test (pinned by the server's /v1/whatif endpoint):

- ``spec.diff(spec) == {}``;
- ``a.with_overrides(**{path: b_value for ...a.diff(b)...})`` reproduces
  ``b`` exactly, byte-identical cache key included;
- the source spec is never mutated;
- unknown dotted paths raise ``KeyError`` with a did-you-mean hint.
"""

from __future__ import annotations

import pytest

from repro.experiments.spec import (
    SPEC_PATH_ALIASES,
    RunSpec,
    flatten_spec_dict,
)
from repro.memory.presets import nvm_bandwidth_scaled
from repro.util.units import MIB

NVM = nvm_bandwidth_scaled(0.5)
TINY = {"grid": 4, "iterations": 2}


def tiny_spec(**changes) -> RunSpec:
    base = dict(
        workload="heat",
        policy="tahoe",
        nvm=NVM,
        fast=True,
        workload_overrides=TINY,
    )
    base.update(changes)
    return RunSpec(**base)


def apply_diff(source: RunSpec, target: RunSpec) -> RunSpec:
    """The round-trip: feed the right-hand side of the diff back in."""
    overrides = {path: b for path, (_, b) in source.diff(target).items()}
    return source.with_overrides(**overrides)


class TestDiff:
    def test_self_diff_is_empty(self):
        s = tiny_spec()
        assert s.diff(s) == {}
        assert tiny_spec().diff(tiny_spec()) == {}

    def test_scalar_field_diff(self):
        a = tiny_spec()
        b = tiny_spec(dram_capacity=2 * a.dram_capacity, seed=7)
        d = a.diff(b)
        assert d == {
            "dram_capacity": (a.dram_capacity, b.dram_capacity),
            "seed": (None, 7),
        }

    def test_nested_paths_descend(self):
        a = tiny_spec()
        b = tiny_spec(workload_overrides={"grid": 4, "iterations": 9})
        assert a.diff(b) == {"workload_overrides.iterations": (2, 9)}

    def test_nvm_device_diffs_by_fingerprint_field(self):
        a = tiny_spec()
        b = tiny_spec(nvm=nvm_bandwidth_scaled(0.25))
        d = a.diff(b)
        assert all(path.startswith("nvm.") for path in d)
        assert "nvm.name" in d

    def test_optional_plane_appears_as_whole_subtree(self):
        a = tiny_spec()
        b = tiny_spec(faults="mild")
        d = a.diff(b)
        assert set(d) == {"faults"}
        absent, plan = d["faults"]
        assert absent is None
        assert isinstance(plan, dict)

    def test_diff_is_directional(self):
        a = tiny_spec()
        b = tiny_spec(seed=3)
        assert a.diff(b) == {"seed": (None, 3)}
        assert b.diff(a) == {"seed": (3, None)}


class TestWithOverrides:
    def test_scalar_override(self):
        a = tiny_spec()
        b = a.with_overrides(dram_capacity=64 * MIB)
        assert b.dram_capacity == 64 * MIB
        assert b == tiny_spec(dram_capacity=64 * MIB)

    def test_source_is_never_mutated(self):
        a = tiny_spec()
        before = a.to_dict()
        a.with_overrides(
            dram_capacity=64 * MIB,
            **{"workload_overrides.iterations": 9, "nvm.read_bandwidth": 1.0},
        )
        assert a.to_dict() == before
        assert a.workload_kwargs == TINY

    def test_empty_overrides_is_identity(self):
        a = tiny_spec()
        assert a.with_overrides() == a
        assert a.with_overrides().cache_key() == a.cache_key()

    def test_dotted_path_into_overrides_mapping(self):
        b = tiny_spec().with_overrides(**{"workload_overrides.iterations": 9})
        assert b.workload_kwargs == {"grid": 4, "iterations": 9}

    def test_alias_memory_dram_bytes(self):
        a = tiny_spec()
        b = a.with_overrides(**{"memory.dram_bytes": 2 * a.dram_capacity})
        assert b.dram_capacity == 2 * a.dram_capacity
        # The alias produces the same spec as the canonical spelling.
        assert b.cache_key() == a.with_overrides(
            dram_capacity=2 * a.dram_capacity
        ).cache_key()

    def test_unknown_path_raises_with_suggestion(self):
        with pytest.raises(KeyError, match="did you mean"):
            tiny_spec().with_overrides(dram_capcity=1)
        with pytest.raises(KeyError, match="unknown spec path"):
            tiny_spec().with_overrides(**{"no.such.path": 1})

    def test_descending_into_scalar_field_raises(self):
        with pytest.raises(KeyError, match="scalar field"):
            tiny_spec().with_overrides(**{"dram_capacity.bytes": 1})

    def test_unknown_nvm_field_raises(self):
        with pytest.raises(KeyError, match="nvm"):
            tiny_spec().with_overrides(**{"nvm.warp_speed": 1})

    def test_nvm_accepts_device_value(self):
        slow = nvm_bandwidth_scaled(0.25)
        b = tiny_spec().with_overrides(nvm=slow)
        assert b.nvm == slow
        assert b.cache_key() == tiny_spec(nvm=slow).cache_key()

    def test_none_drops_optional_plane(self):
        a = tiny_spec(faults="mild")
        b = a.with_overrides(faults=None)
        assert b.faults is None
        assert b.cache_key() == tiny_spec().cache_key()

    def test_grows_missing_optional_plane_leaf(self):
        a = tiny_spec(faults="mild")
        plan = a.to_dict()["faults"]
        b = tiny_spec().with_overrides(faults=plan)
        assert b.cache_key() == a.cache_key()


class TestRoundTrip:
    CASES = [
        dict(dram_capacity=64 * MIB),
        dict(seed=11, scheduler="critical-path"),
        dict(workload_overrides={"grid": 4, "iterations": 9}),
        dict(policy_overrides={"solver": "greedy"}),
        dict(nvm=nvm_bandwidth_scaled(0.25)),
        dict(faults="mild"),
        dict(telemetry=True),
        dict(stream=True),
        dict(workload="cg", workload_overrides={}),
    ]

    @pytest.mark.parametrize("changes", CASES, ids=lambda c: "+".join(sorted(c)))
    def test_diff_then_override_reproduces_target(self, changes):
        a, b = tiny_spec(), tiny_spec(**changes)
        c = apply_diff(a, b)
        assert c == b
        assert c.cache_key() == b.cache_key()
        assert a.diff(c) == a.diff(b)
        assert c.diff(b) == {}

    def test_round_trip_both_directions(self):
        a = tiny_spec(faults="mild", seed=3)
        b = tiny_spec(dram_capacity=64 * MIB, telemetry=True)
        assert apply_diff(a, b).cache_key() == b.cache_key()
        assert apply_diff(b, a).cache_key() == a.cache_key()


class TestHypothesisRoundTrip:
    """Property form of the round-trip over a generated spec space."""

    def test_property_round_trip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        specs = st.builds(
            tiny_spec,
            dram_capacity=st.sampled_from([8 * MIB, 16 * MIB, 64 * MIB]),
            n_workers=st.sampled_from([2, 4, 8]),
            seed=st.sampled_from([None, 0, 7]),
            scheduler=st.sampled_from(["fifo", "critical-path"]),
            workload_overrides=st.fixed_dictionaries(
                {"grid": st.sampled_from([4, 6]), "iterations": st.sampled_from([2, 3])}
            ),
            faults=st.sampled_from([None, "mild"]),
        )

        @settings(max_examples=60, deadline=None)
        @given(a=specs, b=specs)
        def check(a: RunSpec, b: RunSpec) -> None:
            assert (a.diff(b) == {}) == (a == b)
            c = apply_diff(a, b)
            assert c == b
            assert c.cache_key() == b.cache_key()

        check()


class TestFlattenAndAliases:
    def test_flatten_paths_are_sorted_and_dotted(self):
        flat = flatten_spec_dict(tiny_spec().to_dict())
        assert list(flat) == sorted(flat)
        assert flat["workload_overrides.grid"] == 4
        assert "nvm.read_bandwidth" in flat

    def test_alias_table_targets_are_real_paths(self):
        spec_fields = set(tiny_spec().to_dict())
        for target in SPEC_PATH_ALIASES.values():
            assert target.split(".")[0] in spec_fields
