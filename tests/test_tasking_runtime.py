"""User-facing TaskRuntime API."""

import pytest

from repro.baselines import DRAMOnlyPolicy, NVMOnlyPolicy
from repro.core.manager import DataManagerPolicy, ManagerConfig
from repro.memory.presets import nvm_bandwidth_scaled
from repro.tasking.footprints import read_footprint, update_footprint, write_footprint
from repro.tasking.runtime import TaskRuntime
from repro.util.units import MIB


@pytest.fixture
def rt():
    return TaskRuntime(nvm=nvm_bandwidth_scaled(0.5))


class TestProgramConstruction:
    def test_data_registers_objects(self, rt):
        a = rt.data("a", int(4 * MIB), static_ref_count=100.0)
        assert a.size_bytes == 4 * MIB
        assert a.static_ref_count == 100.0

    def test_spawn_infers_dependences(self, rt):
        a = rt.data("a", int(MIB))
        t1 = rt.spawn("w", {a: write_footprint(a.size_bytes)})
        t2 = rt.spawn("r", {a: read_footprint(a.size_bytes)})
        assert rt.graph.predecessors(t2) == [t1]

    def test_spawn_type_name_defaults_to_name(self, rt):
        a = rt.data("a", int(MIB))
        t = rt.spawn("kernel", {a: read_footprint(a.size_bytes)})
        assert t.type_name == "kernel"

    def test_barrier_orders_unrelated_tasks(self, rt):
        a = rt.data("a", int(MIB))
        b = rt.data("b", int(MIB))
        t1 = rt.spawn("t1", {a: update_footprint(a.size_bytes, a.size_bytes)})
        bar = rt.barrier()
        t2 = rt.spawn("t2", {b: update_footprint(b.size_bytes, b.size_bytes)})
        # t2 transitively depends on t1 through the barrier.
        assert bar in rt.graph.predecessors(t2)
        assert t1 in rt.graph.predecessors(bar)

    def test_two_barriers_chain(self, rt):
        a = rt.data("a", int(MIB))
        rt.spawn("t1", {a: update_footprint(a.size_bytes, a.size_bytes)})
        b1 = rt.barrier()
        rt.spawn("t2", {a: update_footprint(a.size_bytes, a.size_bytes)})
        b2 = rt.barrier()
        rt.graph.validate()
        order = rt.graph.topological_order()
        assert order.index(b1) < order.index(b2)


class TestExecution:
    def _program(self, rt, n=6):
        a = rt.data("a", int(8 * MIB))
        for i in range(n):
            rt.spawn(
                f"s{i}",
                {a: update_footprint(a.size_bytes, a.size_bytes)},
                compute_time=1e-4,
                type_name="s",
                iteration=i,
            )
        return a

    def test_run_returns_trace(self, rt):
        self._program(rt)
        tr = rt.run(NVMOnlyPolicy())
        tr.validate()
        assert tr.makespan > 0
        assert tr.meta["policy"] == "nvm-only"

    def test_dram_only_machine(self, rt):
        self._program(rt)
        big = rt.dram_only_machine()
        tr = big.run(DRAMOnlyPolicy())
        tr2 = rt.run(NVMOnlyPolicy())
        assert tr.makespan < tr2.makespan

    def test_run_with_data_manager(self, rt):
        self._program(rt, n=10)
        tr = rt.run(DataManagerPolicy())
        tr.validate()
        assert tr.makespan > 0

    def test_partitioning_applied_when_policy_asks(self):
        rt = TaskRuntime(nvm=nvm_bandwidth_scaled(0.5))
        big = rt.data("big", int(128 * MIB), partitionable=True)
        for i in range(4):
            rt.spawn(
                f"sweep{i}",
                {big: update_footprint(big.size_bytes, big.size_bytes)},
                compute_time=1e-4,
                type_name="sweep",
            )
        pol = DataManagerPolicy(ManagerConfig(partition_max_bytes=int(32 * MIB)))
        tr = rt.run(pol)
        tr.validate()
        # Tasks now touch chunks, not the monolithic object.
        names = {o.name for r in tr.records for o in r.task.accesses}
        assert any("[" in n for n in names)
