"""Regenerate tests/goldens/equivalence.json (run from the repo root).

Run this against the *pre-change* code when (re)pinning: the golden file
is the contract that performance work never changes a simulated number.
Each spec is generated from a rewound process state (see
``reset_process_caches``) so the pins are order-independent.

    PYTHONPATH=src python tests/goldens/regen_equivalence.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from test_perf_equivalence import (  # noqa: E402
    GOLDEN_PATH,
    PINNED_FULL,
    SPOT_SPECS,
    _canonical_digest,
    reset_process_caches,
)

from repro.experiments.runner import run_and_summarize  # noqa: E402


def main() -> None:
    goldens: dict[str, dict] = {}
    for exp in sorted(SPOT_SPECS):
        reset_process_caches()
        spec = SPOT_SPECS[exp]
        payload = run_and_summarize(spec).to_payload()
        entry: dict = {
            "cache_key": spec.cache_key(),
            "payload_sha256": _canonical_digest(payload),
        }
        if exp in PINNED_FULL:
            entry["payload"] = payload
        goldens[exp] = entry
        print(f"{exp}: {entry['payload_sha256'][:16]}")
    GOLDEN_PATH.write_text(
        json.dumps(goldens, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
