"""Bandwidth contention model and the hardware DRAM-cache model."""

import pytest

from repro.memory.cache import DRAMCacheModel
from repro.memory.contention import NO_CONTENTION, ContentionModel
from repro.util.units import MIB


class TestContention:
    def test_single_stream_full_bandwidth(self):
        c = ContentionModel(saturation_streams=6)
        assert c.share(1) == pytest.approx(1.0)
        assert c.slowdown(1) == pytest.approx(1.0)

    def test_below_saturation_no_sharing(self):
        c = ContentionModel(saturation_streams=6)
        assert c.share(6) == pytest.approx(1.0)

    def test_beyond_saturation_processor_sharing(self):
        c = ContentionModel(saturation_streams=6, rolloff=1.0)
        assert c.share(12) == pytest.approx(0.5)
        assert c.slowdown(12) == pytest.approx(2.0)

    def test_share_monotone_nonincreasing(self):
        c = ContentionModel()
        shares = [c.share(n) for n in range(1, 40)]
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_gentle_rolloff(self):
        hard = ContentionModel(saturation_streams=4, rolloff=1.0)
        soft = ContentionModel(saturation_streams=4, rolloff=0.5)
        assert soft.share(16) > hard.share(16)

    def test_no_contention_sentinel(self):
        assert NO_CONTENTION.share(10_000) == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ContentionModel(saturation_streams=0)

    def test_nonpositive_stream_count_clamped(self):
        c = ContentionModel()
        assert c.share(0) == c.share(1)


class TestDRAMCacheModel:
    def test_hit_rate_full_fit(self):
        m = DRAMCacheModel(dram_capacity_bytes=int(256 * MIB), conflict_factor=0.0)
        assert m.hit_rate(int(128 * MIB)) == pytest.approx(1.0)

    def test_hit_rate_capacity_bound(self):
        m = DRAMCacheModel(dram_capacity_bytes=int(256 * MIB), conflict_factor=0.0)
        assert m.hit_rate(int(512 * MIB)) == pytest.approx(0.5)

    def test_conflict_factor_shaves_hits(self):
        m = DRAMCacheModel(dram_capacity_bytes=int(256 * MIB), conflict_factor=0.2)
        assert m.hit_rate(int(128 * MIB)) == pytest.approx(0.8)

    def test_blend_bounds(self):
        m = DRAMCacheModel(dram_capacity_bytes=int(256 * MIB))
        t_d, t_n = 1.0, 4.0
        # tiny working set: near-DRAM; huge: near NVM (plus fill penalty)
        fast = m.blend(t_d, t_n, int(1 * MIB))
        slow = m.blend(t_d, t_n, int(64 * 1024 * MIB))
        assert t_d <= fast < slow
        assert slow <= t_n + m.fill_penalty * t_d + 1e-9

    def test_blend_monotone_in_working_set(self):
        m = DRAMCacheModel(dram_capacity_bytes=int(256 * MIB))
        sizes = [int(s * MIB) for s in (64, 128, 256, 512, 1024)]
        vals = [m.blend(1.0, 4.0, s) for s in sizes]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DRAMCacheModel(dram_capacity_bytes=0)
        with pytest.raises(ValueError):
            DRAMCacheModel(dram_capacity_bytes=1, conflict_factor=1.0)
