"""Differential suite for the SoA placement plane (PR 10 tentpole).

The array weigher (:func:`repro.core.placement._weights_for`) must be
*bitwise* identical to the retired scalar loop, which survives verbatim
as ``_weights_for_ref``.  Hypothesis drives both over adversarial demand
batches — mixed sensitivity classes, zero-count objects, duplicate
sizes/load-fractions (the per-value memo paths), every config-flag
combination, and both residency mixes (the all-out fast path and the
masked scatter) — and every float is compared by its IEEE-754 bytes,
not by ``==``.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.demand import DemandBatch
from repro.core.knapsack import (
    _STATES_MAX,
    _states,
    clear_solver_cache,
    solve_knapsack,
    solve_knapsack_arrays,
    solver_cache_stats,
)
from repro.core.models import ObjectStats
from repro.core.placement import (
    ObjectDemand,
    PlanConfig,
    _weights_for,
    _weights_for_ref,
    make_plan,
)
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.util.deprecation import ReproDeprecationWarning
from repro.util.rng import pooled_rng, spawn_rng

DRAM = dram()
NVM = nvm_bandwidth_scaled(0.5)


def bits(x: float) -> bytes:
    """The IEEE-754 little-endian bytes of ``x`` — bitwise comparison."""
    return struct.pack("<d", x)


def assert_bitwise(vec: np.ndarray, ref: list[float]) -> None:
    assert vec.dtype == np.float64
    assert vec.shape == (len(ref),)
    for i, (a, b) in enumerate(zip(vec.tolist(), ref)):
        assert bits(a) == bits(b), f"lane {i}: {a!r} != {b!r}"


# ----------------------------------------------------------------------
# Demand strategies
# ----------------------------------------------------------------------
# Duplicate-heavy pools exercise the per-value memos; the bw_demand pool
# straddles the t1/t2 thresholds so batches mix all three sensitivity
# classes.  peak_of(NVM) is ~1e10-ish; cover both sides generously.
_SIZES = st.sampled_from([4096, 1 << 20, 1 << 22, 3 << 20, 1 << 26])
_COUNTS = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
)
_BW = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False),
)
_FRAC = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def demand(draw, uid):
    stats = ObjectStats(
        uid=uid,
        size_bytes=draw(_SIZES),
        loads=draw(_COUNTS),
        stores=draw(_COUNTS),
        misses=draw(_COUNTS),
        bw_demand=draw(_BW),
        n_tasks=draw(st.integers(min_value=0, max_value=64)),
        confidence=draw(_FRAC),
        mem_seconds=draw(
            st.one_of(st.just(0.0), st.floats(min_value=1e-9, max_value=10.0))
        ),
        dram_frac=draw(_FRAC),
    )
    return ObjectDemand(
        stats,
        in_dram=draw(st.booleans()),
        first_use_offset=draw(
            st.floats(min_value=-1.0, max_value=5.0, allow_nan=False)
        ),
    )


@st.composite
def demand_list(draw, min_size=0, max_size=12):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    return [draw(demand(uid)) for uid in range(1, n + 1)]


_CFGS = st.builds(
    PlanConfig,
    distinguish_rw=st.booleans(),
    use_miss_counter=st.booleans(),
    use_confidence=st.booleans(),
    cost_margin=st.sampled_from([0.0, 1.0, 1.5]),
)


# ----------------------------------------------------------------------
# Weigher: vector vs scalar reference
# ----------------------------------------------------------------------
class TestWeightsDifferential:
    @settings(max_examples=200, deadline=None)
    @given(
        demands=demand_list(),
        cfg=_CFGS,
        pressure=st.sampled_from([0.0, 0.3, 1.0]),
        scale=st.sampled_from([1.0, 0.25, 2.0]),
    )
    def test_bitwise_equal(self, calibration_bw, demands, cfg, pressure, scale):
        batch = DemandBatch.from_demands(demands)
        vec = _weights_for(batch, NVM, DRAM, calibration_bw, cfg, pressure, scale)
        ref = _weights_for_ref(demands, NVM, DRAM, calibration_bw, cfg, pressure, scale)
        assert_bitwise(vec, ref)

    @settings(max_examples=50, deadline=None)
    @given(demands=demand_list(min_size=1), resident=st.booleans())
    def test_homogeneous_residency(self, calibration_bw, demands, resident):
        # Force every object to one side so both the all-out fast path
        # (scatter-is-identity) and the all-in early return are hit.
        for d in demands:
            d.in_dram = resident
        cfg = PlanConfig()
        batch = DemandBatch.from_demands(demands)
        vec = _weights_for(batch, NVM, DRAM, calibration_bw, cfg, 0.7)
        ref = _weights_for_ref(demands, NVM, DRAM, calibration_bw, cfg, 0.7)
        assert_bitwise(vec, ref)

    def test_empty_batch(self, calibration_bw):
        vec = _weights_for(
            DemandBatch.from_demands([]), NVM, DRAM, calibration_bw, PlanConfig(), 0.0
        )
        assert vec.shape == (0,)

    @settings(max_examples=50, deadline=None)
    @given(demands=demand_list())
    def test_batch_round_trip(self, demands):
        # to_demands must reconstruct the list form bit-for-bit — it is
        # what feeds the reference weigher.
        batch = DemandBatch.from_demands(demands)
        back = batch.to_demands()
        assert len(back) == len(demands)
        for a, b in zip(demands, back):
            assert a.stats == b.stats
            assert a.in_dram == b.in_dram
            assert bits(a.first_use_offset) == bits(b.first_use_offset)


# ----------------------------------------------------------------------
# make_plan: batch form vs deprecated list form
# ----------------------------------------------------------------------
class TestMakePlanEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(demands=demand_list(), solver=st.sampled_from(["dp", "greedy"]))
    def test_list_shim_matches_batch(self, calibration_bw, demands, solver):
        cfg = PlanConfig(solver=solver)
        cap, used = 64 << 20, 16 << 20
        batch = DemandBatch.from_demands(demands)
        plan = make_plan("global", batch, cap, used, NVM, DRAM, calibration_bw, cfg)
        with pytest.warns(ReproDeprecationWarning, match="DemandBatch"):
            shim = make_plan(
                "global", list(demands), cap, used, NVM, DRAM, calibration_bw, cfg
            )
        assert shim.dram_set == plan.dram_set
        assert bits(shim.predicted_gain) == bits(plan.predicted_gain)
        assert set(shim.weights) == set(plan.weights)
        for uid, w in plan.weights.items():
            assert bits(shim.weights[uid]) == bits(w)
            assert bits(shim.first_use[uid]) == bits(plan.first_use[uid])


# ----------------------------------------------------------------------
# Knapsack: array front-end and bounded warm-start state
# ----------------------------------------------------------------------
class TestKnapsackArrays:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-5.0, max_value=50.0, allow_nan=False),
            max_size=10,
        ),
        data=st.data(),
    )
    def test_matches_sequence_front_end(self, values, data):
        sizes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=1 << 22),
                min_size=len(values),
                max_size=len(values),
            )
        )
        cap = data.draw(st.integers(min_value=1, max_value=8 << 20))
        arr = solve_knapsack_arrays(
            np.asarray(values), np.asarray(sizes, dtype=np.int64), cap, use_cache=False
        )
        seq = solve_knapsack(values, sizes, cap, use_cache=False)
        assert arr == seq

    def test_states_lru_is_bounded(self):
        clear_solver_cache()
        values = np.asarray([3.0, 2.0, 5.0])
        # More distinct capacity geometries than the LRU admits.
        for i in range(_STATES_MAX + 5):
            cap = (i + 1) * 100_000
            sizes = np.asarray([cap // 3, cap // 4, cap // 2], dtype=np.int64)
            solve_knapsack_arrays(values, sizes, cap)
        assert len(_states) <= _STATES_MAX
        stats = solver_cache_stats()
        assert stats["solves"] == _STATES_MAX + 5
        assert stats["computed_rows"] > 0

    def test_states_lru_keeps_recent_geometry(self):
        clear_solver_cache()
        values = np.asarray([3.0, 2.0, 5.0])
        caps = [(i + 1) * 100_000 for i in range(_STATES_MAX + 3)]
        for cap in caps:
            sizes = np.asarray([cap // 3, cap // 4, cap // 2], dtype=np.int64)
            solve_knapsack_arrays(values, sizes, cap)
        # The most recent geometries survive the eviction sweep.
        unit = caps[-1] // 512
        assert caps[-1] // max(1, unit) in _states


# ----------------------------------------------------------------------
# Pooled RNG: recycled generators reproduce fresh spawns bit-for-bit
# ----------------------------------------------------------------------
class TestPooledRng:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        key=st.lists(
            st.one_of(st.integers(min_value=0, max_value=1 << 30), st.text(max_size=8)),
            max_size=3,
        ),
    )
    def test_matches_spawn(self, seed, key):
        fresh = spawn_rng(seed, *key).integers(0, 2**63, size=16)
        pooled = pooled_rng(seed, *key).integers(0, 2**63, size=16)
        assert pooled.tolist() == fresh.tolist()

    def test_reset_between_uses(self):
        # Draining a pooled generator must not perturb the next checkout
        # of the same stream key.
        a = pooled_rng(3, "sampler", "x").integers(0, 2**63, size=8)
        pooled_rng(3, "sampler", "x").random(100)  # drain arbitrarily
        b = pooled_rng(3, "sampler", "x").integers(0, 2**63, size=8)
        assert a.tolist() == b.tolist()
