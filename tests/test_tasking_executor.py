"""Event-driven executor: scheduling, timing, stalls, migrations."""

import pytest

from repro.baselines.policies import BasePolicy, DRAMOnlyPolicy, NVMOnlyPolicy
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.dataobj import DataObject
from repro.tasking.executor import Executor, ExecutorConfig
from repro.tasking.footprints import read_footprint, update_footprint, write_footprint
from repro.tasking.graph import TaskGraph
from repro.tasking.scheduler import CriticalPathPolicy, FIFOPolicy, LIFOPolicy
from repro.tasking.task import Task
from repro.util.units import MIB

from tests.helpers import dram_for, make_chain_graph, make_fork_join_graph, run_graph


class TestBasicExecution:
    def test_chain_is_serialized(self, nvm_bw):
        g = make_chain_graph(n_tasks=5)
        tr = run_graph(g, dram_for(g), nvm_bw, DRAMOnlyPolicy(), workers=4)
        tr.validate()
        recs = sorted(tr.records, key=lambda r: r.start)
        for a, b in zip(recs, recs[1:]):
            assert b.start >= a.finish - 1e-12

    def test_fork_join_parallelizes(self, nvm_bw):
        g = make_fork_join_graph(width=8)
        serial = run_graph(g, dram_for(g), nvm_bw, DRAMOnlyPolicy(), workers=1)
        parallel = run_graph(g, dram_for(g), nvm_bw, DRAMOnlyPolicy(), workers=8)
        assert parallel.makespan < serial.makespan / 2

    def test_makespan_at_least_critical_path_compute(self, nvm_bw):
        g = make_fork_join_graph(width=4)
        tr = run_graph(g, dram_for(g), nvm_bw, DRAMOnlyPolicy(), workers=8)
        cp, _ = g.critical_path(lambda t: t.compute_time)
        assert tr.makespan >= cp * 0.74  # within intra-task overlap factor

    def test_all_tasks_run_exactly_once(self, nvm_bw):
        g = make_fork_join_graph(width=6)
        tr = run_graph(g, dram_for(g), nvm_bw, NVMOnlyPolicy())
        assert len(tr.records) == len(g.tasks)
        assert len({r.task.tid for r in tr.records}) == len(g.tasks)

    def test_placement_affects_timing(self, nvm_bw):
        g = make_chain_graph(n_tasks=4, obj_mib=32)
        on_dram = run_graph(g, dram_for(g), nvm_bw, DRAMOnlyPolicy())
        on_nvm = run_graph(g, dram_for(g), nvm_bw, NVMOnlyPolicy())
        assert on_nvm.makespan > 1.5 * on_dram.makespan

    def test_empty_graph(self, nvm_bw):
        tr = run_graph(TaskGraph(), dram(), nvm_bw, NVMOnlyPolicy())
        assert tr.makespan == 0.0 and tr.records == []

    def test_deterministic_across_runs(self, nvm_bw):
        g = make_fork_join_graph(width=8)
        t1 = run_graph(g, dram_for(g), nvm_bw, NVMOnlyPolicy())
        t2 = run_graph(g, dram_for(g), nvm_bw, NVMOnlyPolicy())
        assert t1.makespan == t2.makespan
        assert [r.task.tid for r in t1.records] == [r.task.tid for r in t2.records]


class TestSchedulers:
    @pytest.mark.parametrize("sched", [FIFOPolicy, LIFOPolicy, CriticalPathPolicy])
    def test_all_schedulers_complete(self, sched, nvm_bw):
        g = make_fork_join_graph(width=8)
        hms = HeterogeneousMemorySystem(dram_for(g), nvm_bw)
        tr = Executor(hms, ExecutorConfig(n_workers=4, scheduler=sched())).run(
            g, NVMOnlyPolicy()
        )
        tr.validate()
        assert len(tr.records) == len(g.tasks)


class _MigratingPolicy(BasePolicy):
    """Promotes one object mid-run to exercise the migration machinery."""

    name = "migrating"

    def __init__(self, obj, after_task_name):
        self.obj = obj
        self.after = after_task_name
        self.record = None

    def after_task(self, task, record, ctx):
        if task.name == self.after and not ctx.hms.in_dram(self.obj):
            self.record = ctx.request_migration(self.obj, ctx.dram, record.finish)
        return 0.0


class TestMigrationInteraction:
    def _graph(self):
        g = TaskGraph()
        hot = DataObject(name="hot", size_bytes=int(32 * MIB))
        for i in range(14):
            g.add(
                Task(
                    name=f"w{i}",
                    type_name="w",
                    accesses={hot: update_footprint(hot.size_bytes, hot.size_bytes)},
                    compute_time=1e-4,
                    iteration=i,
                )
            )
        return g, hot

    def test_migration_speeds_later_tasks(self, nvm_bw):
        g, hot = self._graph()
        base = run_graph(g, dram(), nvm_bw, NVMOnlyPolicy(), workers=1)
        pol = _MigratingPolicy(hot, "w0")
        tr = run_graph(g, dram(), nvm_bw, pol, workers=1)
        assert pol.record is not None
        assert tr.makespan < base.makespan
        assert tr.migration_count == 1

    def test_writer_stalls_until_copy_lands(self, nvm_bw):
        g, hot = self._graph()
        pol = _MigratingPolicy(hot, "w0")
        tr = run_graph(g, dram(), nvm_bw, pol, workers=1)
        # w1 writes the object, so it must wait for the in-flight copy.
        w1 = next(r for r in tr.records if r.task.name == "w1")
        assert w1.stall_time > 0

    def test_reader_proceeds_on_source_copy(self, nvm_bw):
        g = TaskGraph()
        hot = DataObject(name="hot", size_bytes=int(64 * MIB))
        g.add(
            Task(
                name="init",
                type_name="init",
                accesses={hot: write_footprint(hot.size_bytes)},
                compute_time=1e-4,
            )
        )
        for i in range(4):
            g.add(
                Task(
                    name=f"r{i}",
                    type_name="r",
                    accesses={hot: read_footprint(hot.size_bytes)},
                    compute_time=1e-4,
                )
            )
        pol = _MigratingPolicy(hot, "init")
        tr = run_graph(g, dram(), nvm_bw, pol, workers=2)
        # Readers during the copy use the NVM source; none of them stall.
        readers = [r for r in tr.records if r.task.name.startswith("r")]
        assert all(r.stall_time == 0 for r in readers)


class TestOverheadAccounting:
    def test_policy_overhead_charged(self, nvm_bw):
        class Overhead(BasePolicy):
            name = "ovh"

            def before_task(self, task, ctx, now):
                return 1e-3

        g = make_chain_graph(n_tasks=4)
        base = run_graph(g, dram(), nvm_bw, NVMOnlyPolicy(), workers=1)
        tr = run_graph(g, dram(), nvm_bw, Overhead(), workers=1)
        assert tr.makespan == pytest.approx(base.makespan + 4e-3, rel=0.01)
        assert tr.total_overhead_time == pytest.approx(4e-3)


class TestContextLookahead:
    def test_upcoming_and_remaining(self, nvm_bw):
        seen = {}

        class Spy(BasePolicy):
            name = "spy"

            def before_task(self, task, ctx, now):
                if task.name == "step0":
                    seen["upcoming"] = [t.name for t in ctx.upcoming_view(3)]
                    seen["remaining"] = len(ctx.remaining_view())
                return 0.0

        g = make_chain_graph(n_tasks=5)
        run_graph(g, dram(), nvm_bw, Spy(), workers=1)
        # before_task fires before dispatch bookkeeping: w0 still counts.
        assert seen["upcoming"] == ["step0", "step1", "step2"]
        assert seen["remaining"] == 5
