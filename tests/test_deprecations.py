"""The one-release deprecation shims around the frozen execution API.

The suite-wide ``filterwarnings = error::…ReproDeprecationWarning`` in
pyproject.toml turns any *unasserted* use of a deprecated form into a
hard failure; these tests are the only places the shims are exercised,
each inside an explicit ``pytest.warns`` block.
"""

import pytest

from repro.baselines import NVMOnlyPolicy
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.migration import MigrationEngine
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.executor import ExecContext, Executor, ExecutorConfig
from repro.tasking.scheduler import LIFOPolicy, make_scheduler
from repro.util.deprecation import ReproDeprecationWarning

from tests.helpers import make_fork_join_graph


def _context():
    graph = make_fork_join_graph(width=4, obj_mib=4.0)
    hms = HeterogeneousMemorySystem(dram(), nvm_bandwidth_scaled(0.5))
    cfg = ExecutorConfig(n_workers=2)
    engine = MigrationEngine(overhead_s=cfg.migration_overhead_s)
    return graph, ExecContext(graph, hms, engine, cfg)


class TestWarningCategory:
    def test_is_a_deprecation_warning(self):
        assert issubclass(ReproDeprecationWarning, DeprecationWarning)


class TestContextListShimsRemoved:
    """PR 6 deprecated the list forms for one release; that release has
    passed and the shims are gone — the view methods are the only API."""

    def test_upcoming_list_form_is_gone(self):
        graph, ctx = _context()
        with pytest.raises(AttributeError):
            ctx.upcoming(3)
        assert isinstance(ctx.upcoming_view(3), tuple)

    def test_remaining_list_form_is_gone(self):
        graph, ctx = _context()
        with pytest.raises(AttributeError):
            ctx.remaining()
        assert len(ctx.remaining_view()) == len(graph.tasks)


class TestExecutorConstructor:
    def test_direct_scheduler_arg_warns_but_works(self):
        hms = HeterogeneousMemorySystem(dram(), nvm_bandwidth_scaled(0.5))
        sched = LIFOPolicy()
        with pytest.warns(ReproDeprecationWarning, match="ExecutorConfig"):
            ex = Executor(hms, ExecutorConfig(n_workers=1), scheduler=sched)
        assert ex.scheduler is sched
        tr = ex.run(make_fork_join_graph(width=4, obj_mib=4.0), NVMOnlyPolicy())
        tr.validate()

    def test_machine_knob_kwargs_rejected_with_hint(self):
        hms = HeterogeneousMemorySystem(dram(), nvm_bandwidth_scaled(0.5))
        with pytest.raises(TypeError, match=r"ExecutorConfig"):
            Executor(hms, n_workers=4)
        with pytest.raises(TypeError, match=r"n_workers.*overlap_factor|overlap_factor.*n_workers"):
            Executor(hms, n_workers=4, overlap_factor=0.5)


class TestExporterPositionalIndent:
    """The exporter unification made ``to_json``'s indent keyword-only;
    the positional spelling warns for one release."""

    def test_positional_indent_warns_but_works(self):
        import json

        from repro.metrics.export import to_json
        from repro.metrics.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.warns(ReproDeprecationWarning, match="indent"):
            legacy = to_json(reg, 2)
        assert legacy == to_json(reg, indent=2)
        assert json.loads(legacy)["metrics"]["series"]

    def test_positional_and_keyword_indent_conflict(self):
        from repro.metrics.export import to_json
        from repro.metrics.registry import MetricsRegistry

        # The conflict is rejected before the shim ever warns.
        with pytest.raises(TypeError, match="indent"):
            to_json(MetricsRegistry(), 2, indent=4)


class TestMakePlanListShim:
    """PR 10 moved the planner onto ``DemandBatch`` columns; the
    list-of-``ObjectDemand`` argument converts (bit-for-bit, see
    tests/test_placement_batch.py) and warns for one release."""

    def test_list_form_warns_but_works(self):
        from repro.core.models import ObjectStats
        from repro.core.placement import ObjectDemand, PlanConfig, make_plan
        from repro.memory.presets import dram, nvm_bandwidth_scaled
        from repro.profiling.calibration import calibrate
        from repro.tasking.executor import ExecutorConfig

        d, n = dram(), nvm_bandwidth_scaled(0.5)
        calib = calibrate(d, n, ExecutorConfig(n_workers=2))
        demands = [
            ObjectDemand(
                ObjectStats(uid=1, size_bytes=1 << 20, loads=1e6, misses=1e5),
                in_dram=False,
            )
        ]
        with pytest.warns(ReproDeprecationWarning, match="DemandBatch"):
            plan = make_plan(
                "global", demands, 64 << 20, 0, n, d, calib, PlanConfig()
            )
        assert plan.scope == "global"
        assert set(plan.weights) == {1}


class TestSchedulerRegistry:
    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(KeyError, match="critical-path"):
            make_scheduler("critical_path")

    def test_known_names_construct(self):
        for name in ("fifo", "lifo", "critical-path", "memory-aware"):
            assert len(make_scheduler(name)) == 0
