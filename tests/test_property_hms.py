"""Property-based HMS state machine test: random alloc/move/free sequences
against a dictionary model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.allocator import OutOfMemoryError
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.dataobj import DataObject
from repro.util.units import MIB


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["alloc_nvm", "alloc_dram", "to_dram", "to_nvm", "free", "dirty"]),
            st.integers(0, 9),
            st.integers(1, 12),
        ),
        min_size=1,
        max_size=80,
    )
)
def test_hms_matches_dictionary_model(ops):
    hms = HeterogeneousMemorySystem(dram(16 * MIB), nvm_bandwidth_scaled(0.5, 256 * MIB))
    model: dict[int, str] = {}  # uid -> device name
    dirty_model: set[int] = set()
    objs: dict[int, DataObject] = {}

    for kind, slot, size_mib in ops:
        obj = objs.get(slot)
        if kind.startswith("alloc"):
            if obj is not None and hms.is_placed(obj):
                continue
            obj = DataObject(name=f"s{slot}", size_bytes=size_mib * MIB)
            objs[slot] = obj
            target = hms.dram if kind == "alloc_dram" else hms.nvm
            try:
                hms.allocate(obj, target)
                model[obj.uid] = target.name
            except OutOfMemoryError:
                del objs[slot]
        elif obj is None or not hms.is_placed(obj):
            continue
        elif kind == "to_dram":
            was_there = model[obj.uid] == hms.dram.name
            try:
                hms.move(obj, hms.dram)
                model[obj.uid] = hms.dram.name
                if not was_there:  # a no-op move copies nothing
                    dirty_model.discard(obj.uid)
            except OutOfMemoryError:
                pass  # placement unchanged on failure
        elif kind == "to_nvm":
            was_there = model[obj.uid] == hms.nvm.name
            hms.move(obj, hms.nvm)
            model[obj.uid] = hms.nvm.name
            if not was_there:  # a no-op move copies nothing
                dirty_model.discard(obj.uid)
        elif kind == "free":
            hms.free(obj)
            model.pop(obj.uid)
            dirty_model.discard(obj.uid)
            del objs[slot]
        elif kind == "dirty":
            hms.mark_dirty(obj)
            if model[obj.uid] == hms.dram.name:
                dirty_model.add(obj.uid)

        # Invariants after every step.
        hms.check_invariants()
        assert hms.residency() == model
        for o in objs.values():
            if hms.is_placed(o):
                assert hms.is_dirty(o) == (o.uid in dirty_model)
        assert hms.dram_used_bytes() <= 16 * MIB
