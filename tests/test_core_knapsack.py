"""Knapsack solvers: unit tests plus property-based check against brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knapsack import (
    clear_solver_cache,
    greedy_bounded,
    greedy_by_density,
    solve_knapsack,
)


def total(mask, values):
    return sum(v for v, keep in zip(values, mask) if keep)


def size_of(mask, sizes):
    return sum(s for s, keep in zip(sizes, mask) if keep)


class TestSolveKnapsack:
    def test_takes_everything_that_fits(self):
        mask = solve_knapsack([1.0, 2.0], [10, 20], capacity=100)
        assert mask == [True, True]

    def test_prefers_higher_value(self):
        mask = solve_knapsack([1.0, 10.0], [50, 50], capacity=50)
        assert mask == [False, True]

    def test_respects_capacity(self):
        values = [5.0, 4.0, 3.0]
        sizes = [40, 40, 40]
        mask = solve_knapsack(values, sizes, capacity=80)
        assert size_of(mask, sizes) <= 80
        assert total(mask, values) == pytest.approx(9.0)

    def test_skips_nonpositive_values(self):
        mask = solve_knapsack([-1.0, 0.0, 1.0], [10, 10, 10], capacity=100)
        assert mask == [False, False, True]

    def test_skips_oversized_items(self):
        mask = solve_knapsack([100.0, 1.0], [200, 10], capacity=100)
        assert mask == [False, True]

    def test_empty_inputs(self):
        assert solve_knapsack([], [], 100) == []
        assert solve_knapsack([1.0], [10], 0) == [False]

    def test_classic_instance(self):
        # values/weights from a standard 0/1 knapsack example
        values = [60.0, 100.0, 120.0]
        sizes = [10, 20, 30]
        mask = solve_knapsack(values, sizes, capacity=50, granularity=50)
        assert total(mask, values) == pytest.approx(220.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            solve_knapsack([1.0], [1, 2], 10)


class TestGreedy:
    def test_density_order(self):
        # item 0: density 1.0; item 1: density 2.0
        mask = greedy_by_density([10.0, 10.0], [10, 5], capacity=5)
        assert mask == [False, True]

    def test_greedy_suboptimal_case_dp_wins(self):
        """The textbook case where density greedy fails and DP succeeds."""
        values = [60.0, 100.0, 120.0]
        sizes = [10, 20, 30]
        g = greedy_by_density(values, sizes, capacity=50)
        d = solve_knapsack(values, sizes, capacity=50, granularity=50)
        assert total(d, values) >= total(g, values)
        assert total(g, values) == pytest.approx(160.0)


@settings(max_examples=100, deadline=None)
@given(
    items=st.lists(
        st.tuples(st.floats(0.1, 100.0), st.integers(1, 50)), min_size=1, max_size=10
    ),
    capacity=st.integers(1, 120),
)
def test_dp_matches_bruteforce_and_dominates_greedy(items, capacity):
    """Property: with exact granularity the DP matches brute force, and
    both DP and greedy stay within capacity."""
    values = [v for v, _ in items]
    sizes = [s for _, s in items]

    best = 0.0
    for picks in itertools.product([0, 1], repeat=len(items)):
        sz = sum(s for s, p in zip(sizes, picks) if p)
        if sz <= capacity:
            best = max(best, sum(v for v, p in zip(values, picks) if p))

    mask = solve_knapsack(values, sizes, capacity, granularity=capacity)
    gmask = greedy_by_density(values, sizes, capacity)
    assert size_of(mask, sizes) <= capacity
    assert size_of(gmask, sizes) <= capacity
    assert total(mask, values) == pytest.approx(best, rel=1e-9)
    assert total(gmask, values) <= best + 1e-9


class TestIncrementalSolver:
    """The memo/warm-start machinery must be invisible in the results."""

    @settings(max_examples=60, deadline=None)
    @given(
        items=st.lists(
            st.tuples(st.floats(0.1, 100.0), st.integers(1, 60)),
            min_size=2,
            max_size=16,
        ),
        patches=st.lists(
            st.tuples(st.integers(0, 15), st.floats(0.1, 100.0)), max_size=4
        ),
        capacity=st.integers(1, 150),
    )
    def test_warm_start_matches_from_scratch(self, items, patches, capacity):
        """Property: every cached solve (exact-fingerprint hits and
        prefix warm starts alike) equals the ``use_cache=False``
        from-scratch reference on the same instance.

        The patch sequence mutates one item at a time, producing exactly
        the almost-identical instance successions the warm-start path is
        built for (long shared prefixes, changed suffixes).
        """
        clear_solver_cache()
        values = [v for v, _ in items]
        sizes = [s for _, s in items]
        instances = [(list(values), list(sizes))]
        for i, new_value in patches:
            values = list(values)
            values[i % len(values)] = new_value
            instances.append((list(values), list(sizes)))
        for vals, szs in instances:
            warm = solve_knapsack(vals, szs, capacity)
            cold = solve_knapsack(vals, szs, capacity, use_cache=False)
            assert warm == cold
            # Second cached solve takes the exact-fingerprint memo path.
            assert solve_knapsack(vals, szs, capacity) == cold

    @settings(max_examples=100, deadline=None)
    @given(
        items=st.lists(
            st.tuples(st.floats(0.1, 100.0), st.integers(1, 50)),
            min_size=1,
            max_size=10,
        ),
        capacity=st.integers(1, 120),
    )
    def test_greedy_bounded_within_half_of_optimum(self, items, capacity):
        """Property: the bounded greedy (density fill vs. best single
        item) achieves at least half the brute-force 0/1 optimum — the
        guarantee the auto-route to greedy for oversized DP tables
        relies on."""
        values = [v for v, _ in items]
        sizes = [s for _, s in items]
        best = 0.0
        for picks in itertools.product([0, 1], repeat=len(items)):
            sz = sum(s for s, p in zip(sizes, picks) if p)
            if sz <= capacity:
                best = max(best, sum(v for v, p in zip(values, picks) if p))
        mask = greedy_bounded(values, sizes, capacity)
        assert size_of(mask, sizes) <= capacity
        assert total(mask, values) >= 0.5 * best - 1e-9
