"""Public API surface: imports, exports, and the README quickstart."""

import importlib

import pytest

import repro


class TestImportSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.memory",
            "repro.tasking",
            "repro.profiling",
            "repro.core",
            "repro.baselines",
            "repro.workloads",
            "repro.experiments",
            "repro.util",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.memory",
            "repro.tasking",
            "repro.core",
            "repro.baselines",
            "repro.profiling",
            "repro.util",
        ],
    )
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"

    def test_root_exports_are_usable(self):
        assert callable(repro.TaskRuntime)
        assert callable(repro.DataManagerPolicy)
        assert callable(repro.read_footprint)


class TestFrozenExecutionAPI:
    """The execution API froze with the SoA executor rewrite (see
    docs/architecture.md).  These snapshots are load-bearing: growing the
    surface needs a deliberate edit here, shrinking or renaming it is a
    compatibility break."""

    def test_executor_module_exports(self):
        from repro.tasking import executor

        assert executor.__all__ == [
            "ExecutorConfig",
            "ExecContext",
            "PlacementPolicy",
            "Executor",
        ]

    def test_executor_config_fields(self):
        import dataclasses

        from repro.tasking.executor import ExecutorConfig

        assert [f.name for f in dataclasses.fields(ExecutorConfig)] == [
            "n_workers",
            "contention",
            "overlap_factor",
            "dram_cache",
            "sampling_interval_cycles",
            "cpu_ghz",
            "seed",
            "migration_overhead_s",
            "scheduler",
        ]
        # the config object is a frozen value type
        cfg = ExecutorConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.n_workers = 8

    def test_executor_constructor_signature(self):
        import inspect

        from repro.tasking.executor import Executor

        params = inspect.signature(Executor.__init__).parameters
        assert list(params) == [
            "self",
            "hms",
            "config",
            "scheduler",  # deprecated shim, one release
            "injector",
            "telemetry",
            "legacy",
        ]
        assert params["legacy"].kind is inspect.Parameter.VAR_KEYWORD

    def test_exec_context_surface(self):
        from repro.tasking.executor import ExecContext

        public = {n for n in dir(ExecContext) if not n.startswith("_")}
        assert public == {
            "dram",
            "nvm",
            "place_initial",
            "request_migration",
            "profile",
            "migration_backlog",
            "profiling_overhead",
            "upcoming_view",
            "remaining_view",
        }


class TestExporterConvention:
    """The metrics exporters share one signature: ``fn(data, *,
    stream=None, path=None) -> str``.  Pinned so the surface can only
    grow deliberately."""

    def test_exporters_share_the_signature(self):
        import inspect

        from repro.metrics.export import to_csv, to_json, to_prometheus

        for fn in (to_csv, to_prometheus):
            params = inspect.signature(fn).parameters
            assert list(params) == ["data", "stream", "path"], fn.__name__
            assert params["stream"].kind is inspect.Parameter.KEYWORD_ONLY
            assert params["path"].kind is inspect.Parameter.KEYWORD_ONLY
        # to_json additionally keeps its indent knob (and, for one
        # release, the deprecated positional spelling of it).
        params = inspect.signature(to_json).parameters
        assert list(params) == ["data", "legacy_indent", "indent", "stream", "path"]
        assert params["stream"].kind is inspect.Parameter.KEYWORD_ONLY

    def test_stream_and_path_are_exclusive(self):
        import io

        from repro.metrics.export import to_json
        from repro.metrics.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("x").inc()
        buf = io.StringIO()
        text = to_json(reg, stream=buf)
        assert buf.getvalue() == text
        with pytest.raises(ValueError, match="not both"):
            to_json(reg, stream=buf, path="nope.json")

    def test_prometheus_accepts_registry_and_snapshot(self):
        from repro.metrics.export import to_prometheus
        from repro.metrics.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("x", help="a counter").inc(3)
        live = to_prometheus(reg)
        assert "repro_x 3" in live
        cold = to_prometheus({"metrics": reg.snapshot()})
        assert "repro_x 3" in cold


class TestDispatchAndServerSurface:
    """The routing entry point and the service layer are public API."""

    def test_dispatch_outcome_union(self):
        from repro.experiments.runner import (
            ClosedRunOutcome,
            DispatchOutcome,
            StreamRunOutcome,
            dispatch_spec,
        )

        assert callable(dispatch_spec)
        assert ClosedRunOutcome.kind == "closed"
        assert StreamRunOutcome.kind == "stream"
        import typing

        assert set(typing.get_args(DispatchOutcome)) == {
            ClosedRunOutcome,
            StreamRunOutcome,
        }

    def test_server_package_surface(self):
        import repro.server as server

        assert server.__all__ == [
            "DigitalTwinServer",
            "ServerConfig",
            "serve",
            "AsyncHttpServer",
            "EventStream",
            "HttpError",
            "Request",
            "Response",
            "Job",
            "JobManager",
            "result_payload",
        ]
        for name in server.__all__:
            assert hasattr(server, name)

    def test_server_config_defaults(self):
        from repro.server import ServerConfig

        cfg = ServerConfig()
        assert cfg.host == "127.0.0.1"
        assert cfg.workers == 2
        assert cfg.use_processes is False

    def test_execute_capturing_is_public(self):
        from repro.experiments.parallel import execute_capturing

        assert callable(execute_capturing)


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import (
            DataManagerPolicy,
            TaskRuntime,
            read_footprint,
            update_footprint,
        )
        from repro.memory.presets import dram, nvm_bandwidth_scaled
        from repro.util.units import MIB

        rt = TaskRuntime(dram=dram(16 * MIB), nvm=nvm_bandwidth_scaled(0.5))
        hot = rt.data("hot_state", 8 * MIB)
        cold = rt.data("cold_table", 48 * MIB)
        for step in range(16):
            rt.spawn(
                f"update[{step}]",
                {
                    hot: update_footprint(8 * MIB, 8 * MIB, reuse=4.0),
                    cold: read_footprint(3 * MIB),
                },
                compute_time=2e-4,
                type_name="update",
                iteration=step,
            )
        trace = rt.run(DataManagerPolicy())
        summary = trace.summary()
        assert summary["makespan"] > 0
        assert summary["n_tasks"] == 16
        assert "migration_overlap" in summary

    def test_examples_are_importable_programs(self):
        import ast
        from pathlib import Path

        for path in sorted(Path("examples").glob("*.py")):
            tree = ast.parse(path.read_text())
            names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
            assert "main" in names, f"{path} lacks a main()"
