"""Public API surface: imports, exports, and the README quickstart."""

import importlib

import pytest

import repro


class TestImportSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.memory",
            "repro.tasking",
            "repro.profiling",
            "repro.core",
            "repro.baselines",
            "repro.workloads",
            "repro.experiments",
            "repro.util",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.memory",
            "repro.tasking",
            "repro.core",
            "repro.baselines",
            "repro.profiling",
            "repro.util",
        ],
    )
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"

    def test_root_exports_are_usable(self):
        assert callable(repro.TaskRuntime)
        assert callable(repro.DataManagerPolicy)
        assert callable(repro.read_footprint)


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import (
            DataManagerPolicy,
            TaskRuntime,
            read_footprint,
            update_footprint,
        )
        from repro.memory.presets import dram, nvm_bandwidth_scaled
        from repro.util.units import MIB

        rt = TaskRuntime(dram=dram(16 * MIB), nvm=nvm_bandwidth_scaled(0.5))
        hot = rt.data("hot_state", 8 * MIB)
        cold = rt.data("cold_table", 48 * MIB)
        for step in range(16):
            rt.spawn(
                f"update[{step}]",
                {
                    hot: update_footprint(8 * MIB, 8 * MIB, reuse=4.0),
                    cold: read_footprint(3 * MIB),
                },
                compute_time=2e-4,
                type_name="update",
                iteration=step,
            )
        trace = rt.run(DataManagerPolicy())
        summary = trace.summary()
        assert summary["makespan"] > 0
        assert summary["n_tasks"] == 16
        assert "migration_overlap" in summary

    def test_examples_are_importable_programs(self):
        import ast
        from pathlib import Path

        for path in sorted(Path("examples").glob("*.py")):
            tree = ast.parse(path.read_text())
            names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
            assert "main" in names, f"{path} lacks a main()"
