"""The RunSpec harness: spec identity, the parallel runner, the result
cache, the policy registry, and the RunSpec-only run_workload API."""

from __future__ import annotations

import pickle

import pytest

from repro.core.manager import DataManagerPolicy
from repro.experiments import parallel as parallel_mod
from repro.experiments import spec as spec_mod
from repro.experiments.cache import ResultCache, get_cache, set_cache_enabled
from repro.experiments.parallel import run_many, run_spec
from repro.experiments.runner import (
    execute_spec,
    make_policy,
    make_scheduler,
    run_workload,
)
from repro.experiments.spec import RunSpec, canonical_json
from repro.memory.presets import nvm_bandwidth_scaled

NVM = nvm_bandwidth_scaled(0.5)

#: Tiny-but-real runs: same DAG shape as the fast preset, fewer steps.
TINY = {"grid": 4, "iterations": 2}


def tiny_spec(policy="tahoe", **changes) -> RunSpec:
    base = dict(
        workload="heat",
        policy=policy,
        nvm=NVM,
        fast=True,
        workload_overrides=TINY,
    )
    base.update(changes)
    return RunSpec(**base)


class TestRunSpecIdentity:
    def test_hashable_and_dict_overrides_normalize(self):
        a = tiny_spec(workload_overrides={"iterations": 2, "grid": 4})
        b = tiny_spec(workload_overrides={"grid": 4, "iterations": 2})
        assert a == b
        assert hash(a) == hash(b)
        assert a.cache_key() == b.cache_key()
        assert {a: 1}[b] == 1

    def test_kwargs_views_round_trip(self):
        s = tiny_spec(policy_overrides={"solver": "greedy"})
        assert s.workload_kwargs == TINY
        assert s.policy_kwargs == {"solver": "greedy"}

    def test_pickle_round_trip(self):
        s = tiny_spec(seed=7, scheduler="critical-path")
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        assert clone.cache_key() == s.cache_key()

    def test_to_dict_round_trip(self):
        s = tiny_spec(exec_overrides={"sampling_interval_cycles": 512})
        clone = RunSpec.from_dict(s.to_dict())
        assert clone == s
        assert clone.cache_key() == s.cache_key()

    @pytest.mark.parametrize(
        "changes",
        [
            {"policy": "nvm-only"},
            {"seed": 3},
            {"dram_capacity": 64 * 2**20},
            {"scheduler": "memory-aware"},
            {"workload_overrides": {"grid": 4, "iterations": 3}},
            {"policy_overrides": {"solver": "greedy"}},
            {"fast": False},
        ],
    )
    def test_any_field_change_changes_cache_key(self, changes):
        assert tiny_spec().cache_key() != tiny_spec().replace(**changes).cache_key()

    def test_model_version_salt_invalidates(self, monkeypatch):
        before = tiny_spec().cache_key()
        monkeypatch.setattr(spec_mod, "MODEL_VERSION", spec_mod.MODEL_VERSION + 1)
        assert tiny_spec().cache_key() != before


class TestPolicyRegistry:
    def test_did_you_mean(self):
        with pytest.raises(KeyError, match="tahoe"):
            make_policy("taho")

    def test_unknown_scheduler(self):
        with pytest.raises(KeyError, match="fifo"):
            make_scheduler("fifp")

    def test_overrides_reach_the_config(self):
        pol = make_policy("tahoe", solver="greedy", name="tahoe-x")
        assert isinstance(pol, DataManagerPolicy)
        assert pol.name == "tahoe-x"

    def test_name_override_does_not_collide(self):
        # `name` inside overrides is a display name, not the registry key.
        pol = make_policy("static", dram_names=("a0",), name="only-a0")
        assert pol.name == "only-a0"
        assert pol.dram_names == frozenset({"a0"})


class TestRunManyDeterminism:
    @pytest.fixture()
    def specs(self):
        return [tiny_spec("tahoe"), tiny_spec("nvm-only"), tiny_spec("xmem")]

    def test_serial_parallel_and_cached_agree(self, specs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        serial = run_many(specs, workers=1, cache=cache, strict=True)
        fanned = run_many(specs, workers=4, cache=False, strict=True)
        cached = run_many(specs, workers=1, cache=cache, strict=True)

        assert all(not r.cached for r in serial + fanned)
        assert all(r.cached for r in cached)
        for a, b, c in zip(serial, fanned, cached):
            assert canonical_json(a.summary) == canonical_json(b.summary)
            assert canonical_json(a.summary) == canonical_json(c.summary)
            assert a.makespan == b.makespan == c.makespan
            assert canonical_json(a.energy) == canonical_json(c.energy)

    def test_duplicates_execute_once_and_keep_order(self, specs, tmp_path):
        calls = []
        batch = [specs[0], specs[1], specs[0]]
        out = run_many(
            batch,
            workers=1,
            cache=ResultCache(tmp_path / "cache"),
            progress=lambda done, total, r: calls.append((done, total)),
            strict=True,
        )
        assert [r.spec for r in out] == batch
        assert out[0].makespan == out[2].makespan
        assert calls[-1] == (3, 3)
        assert len(calls) == 3


class TestResultCache:
    def test_hit_returns_without_executing(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        cold = run_many([spec], workers=1, cache=cache, strict=True)[0]
        assert cache.puts == 1

        def boom(_spec):
            raise AssertionError("cache hit must not re-execute")

        monkeypatch.setattr(parallel_mod, "run_and_summarize", boom)
        warm = run_many([spec], workers=1, cache=cache, strict=True)[0]
        assert warm.cached
        assert warm.makespan == cold.makespan
        assert cache.hits == 1

    def test_salt_bump_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        run_many([spec], workers=1, cache=cache, strict=True)
        monkeypatch.setattr(spec_mod, "MODEL_VERSION", spec_mod.MODEL_VERSION + 1)
        again = run_many([spec], workers=1, cache=cache, strict=True)[0]
        assert not again.cached
        assert cache.puts == 2

    def test_spec_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_many([tiny_spec()], workers=1, cache=cache, strict=True)
        other = run_many([tiny_spec(seed=11)], workers=1, cache=cache, strict=True)[0]
        assert not other.cached

    def test_invalidate_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        run_many([spec], workers=1, cache=cache, strict=True)
        assert cache.entries() == 1
        assert cache.size_bytes() > 0
        assert cache.invalidate(spec.cache_key()) == 1
        assert cache.get(spec.cache_key()) is None
        s = cache.stats()
        assert (s["hits"], s["puts"], s["entries"]) == (0, 1, 0)
        assert "misses" in cache.describe()

    def test_disable_switch(self, monkeypatch):
        set_cache_enabled(False)
        try:
            assert get_cache() is None
        finally:
            set_cache_enabled(True)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert get_cache() is None

    def test_cache_bypass_false(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        run_many([spec], workers=1, cache=cache, strict=True)
        fresh = run_spec(spec, cache=False)
        assert not fresh.cached


class TestFailureContainment:
    BAD = tiny_spec(workload_overrides={"no_such_parameter": 1})

    def test_failure_record_and_siblings_complete(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good = tiny_spec()
        out = run_many([self.BAD, good], workers=1, cache=cache)
        assert not out[0].ok
        assert out[0].error_type == "TypeError"
        assert "no_such_parameter" in (out[0].traceback or "")
        assert out[1].ok and out[1].makespan > 0
        # failures are never cached
        assert cache.get(self.BAD.cache_key()) is None

    def test_worker_crash_contained_across_processes(self):
        out = run_many([self.BAD, tiny_spec()], workers=2, cache=False)
        assert not out[0].ok
        assert out[1].ok

    def test_strict_raises(self):
        with pytest.raises(RuntimeError, match="heat/tahoe"):
            run_many([self.BAD], workers=1, cache=False, strict=True)


class TestRunWorkloadAPI:
    def test_spec_form_is_the_only_entry_point(self, recwarn):
        tr = run_workload(tiny_spec())
        assert tr.makespan > 0
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_removed_kwargs_form_raises_with_migration_hint(self):
        with pytest.raises(TypeError, match="RunSpec"):
            run_workload("heat", "tahoe", NVM, fast=True)

    def test_extra_arguments_rejected_even_with_spec(self):
        with pytest.raises(TypeError, match="RunSpec"):
            run_workload(tiny_spec(), fast=True)

    def test_bare_workload_string_rejected(self):
        with pytest.raises(TypeError, match="RunSpec"):
            run_workload("heat")

    def test_top_level_exports(self):
        import repro

        assert repro.RunSpec is RunSpec
        assert repro.run_many is run_many
        assert callable(repro.make_policy)


class TestMixedFormatCache:
    """JSON and binary entries must interoperate inside one directory."""

    def test_cross_format_put_get(self, tmp_path):
        d = tmp_path / "cache"
        js = ResultCache(d, binary=False)
        bz = ResultCache(d, binary=True)
        js.put("alpha", {"makespan": 1.0})
        bz.put("beta", {"makespan": 2.0, "trace": list(range(64))})
        # Readers accept both formats regardless of write preference.
        assert bz.get("alpha") == {"makespan": 1.0}
        assert js.get("beta")["trace"] == list(range(64))
        assert (d / "alpha.json").exists()
        assert (d / "beta.jsonz").exists()

    def test_put_supersedes_other_format_twin(self, tmp_path):
        d = tmp_path / "cache"
        js = ResultCache(d, binary=False)
        bz = ResultCache(d, binary=True)
        js.put("alpha", {"makespan": 1.0})
        bz.put("alpha", {"makespan": 1.5})
        assert not (d / "alpha.json").exists()
        assert js.get("alpha") == {"makespan": 1.5}
        js.put("alpha", {"makespan": 1.75})
        assert not (d / "alpha.jsonz").exists()
        assert bz.get("alpha") == {"makespan": 1.75}

    def test_corrupt_binary_degrades_to_miss(self, tmp_path):
        d = tmp_path / "cache"
        bz = ResultCache(d, binary=True)
        bz.put("beta", {"makespan": 2.0})
        (d / "beta.jsonz").write_bytes(b"RPZ1" + b"\x00garbage")
        assert bz.get("beta") is None
        assert bz.misses == 1

    def test_truncated_binary_is_quarantined_and_recoverable(self, tmp_path):
        d = tmp_path / "cache"
        bz = ResultCache(d, binary=True)
        bz.put("beta", {"makespan": 2.0})
        blob = (d / "beta.jsonz").read_bytes()
        (d / "beta.jsonz").write_bytes(blob[: len(blob) // 2])  # torn write
        # The corpse misses, never raises, and is moved aside ...
        assert bz.get("beta") is None
        assert bz.misses == 1
        assert bz.quarantined == 1
        assert not (d / "beta.jsonz").exists()
        assert (d / "beta.jsonz.bad").exists()
        # ... so it no longer shadows the key: misses stay cheap and a
        # fresh result re-caches under the same key.
        assert bz.get("beta") is None
        assert bz.quarantined == 1  # nothing left to quarantine
        bz.put("beta", {"makespan": 2.5})
        assert bz.get("beta") == {"makespan": 2.5}
        assert bz.stats()["quarantined"] == 1

    def test_torn_json_is_quarantined(self, tmp_path):
        d = tmp_path / "cache"
        js = ResultCache(d, binary=False)
        js.put("alpha", {"makespan": 1.0})
        (d / "alpha.json").write_text('{"makespan": 1.', encoding="utf-8")
        assert js.get("alpha") is None
        assert js.quarantined == 1
        assert (d / "alpha.json.bad").exists()
        # Quarantined corpses are invisible to entry accounting.
        assert js.entries() == 0

    def test_prune_over_mixed_set(self, tmp_path):
        import os

        d = tmp_path / "cache"
        js = ResultCache(d, binary=False)
        bz = ResultCache(d, binary=True)
        for i, cache in enumerate([js, bz, js, bz]):
            cache.put(f"k{i}", {"i": i})
        # Deterministic LRU order regardless of filesystem timestamp
        # resolution: k0 oldest ... k3 newest.
        for i in range(4):
            entry = d / (f"k{i}.jsonz" if i % 2 else f"k{i}.json")
            os.utime(entry, (1000.0 + i, 1000.0 + i))
        removed = js.prune(max_entries=2)
        assert removed == 2
        assert js.get("k0") is None and js.get("k1") is None
        assert js.get("k2") == {"i": 2} and js.get("k3") == {"i": 3}

    def test_prune_age_with_injected_clock(self, tmp_path):
        import os

        d = tmp_path / "cache"
        cache = ResultCache(d, binary=False)
        for i in range(3):
            cache.put(f"k{i}", {"i": i})
            os.utime(d / f"k{i}.json", (1000.0 * (i + 1),) * 2)
        # Reference clock injected: k0 (t=1000) and k1 (t=2000) are older
        # than 1500 s at now=3600; k2 (t=3000) survives.  No sleeping, no
        # wall-clock dependence.
        removed = cache.prune(max_age_s=1500.0, now=3600.0)
        assert removed == 2
        assert cache.get("k2") == {"i": 2}
        assert cache.get("k0") is None and cache.get("k1") is None

    def test_prune_mtime_ties_break_by_name(self, tmp_path):
        import os

        d = tmp_path / "cache"
        cache = ResultCache(d, binary=False)
        for name in ("aa", "bb", "cc", "dd"):
            cache.put(name, {"k": name})
            os.utime(d / f"{name}.json", (1000.0, 1000.0))  # all tied
        # LRU by (mtime, name): with every mtime equal, the lexically
        # largest names count as newest, so 'aa' and 'bb' are evicted —
        # deterministically, on any filesystem timestamp resolution.
        removed = cache.prune(max_entries=2)
        assert removed == 2
        assert cache.get("aa") is None and cache.get("bb") is None
        assert cache.get("cc") == {"k": "cc"} and cache.get("dd") == {"k": "dd"}

    def test_invalidate_removes_both_twins(self, tmp_path):
        import gzip
        import json

        d = tmp_path / "cache"
        js = ResultCache(d, binary=False)
        js.put("gamma", {"makespan": 3.0})
        # Force a twin pair for one key (put would normally supersede).
        blob = json.dumps({"makespan": 3.5}).encode("utf-8")
        (d / "gamma.jsonz").write_bytes(b"RPZ1" + gzip.compress(blob, mtime=0))
        assert js.entries() == 2
        assert js.invalidate("gamma") == 2
        assert js.get("gamma") is None

    def test_stats_count_binary_entries(self, tmp_path):
        d = tmp_path / "cache"
        js = ResultCache(d, binary=False)
        bz = ResultCache(d, binary=True)
        js.put("a", {"x": 1})
        bz.put("b", {"x": 2})
        bz.put("c", {"x": 3})
        st = js.stats()
        assert st["entries"] == 3
        assert st["binary_entries"] == 2
        assert st["puts"] == 1 and bz.stats()["puts"] == 2
        assert "2 binary" in js.describe()
