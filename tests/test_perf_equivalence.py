"""Equivalence regression harness for the hot-path performance pass.

The performance work (incremental knapsack, graph-build interning, the
executor fast paths, binary cache payloads) must not change a single
simulated number: every optimization is either exact-by-construction or
routed around the tier-1 configurations.  This module pins that promise:

- one spot-check :class:`RunSpec` per registered experiment, with the
  full result payload pinned for e1/e5/e9 and a canonical-JSON sha256
  pinned for the rest (``tests/goldens/equivalence.json`` was generated
  from the pre-PR code);
- ``RunSpec.cache_key()`` pinned for every spot spec (the on-disk cache
  must keep addressing pre-PR entries);
- a run-twice check per spec: the second in-process run exercises every
  memo layer (graph interning, knapsack cache, calibration cache) and
  must reproduce the first run byte-identically — including the
  partitioned ``tahoe-part`` variant, whose graph must never share a
  memo entry with the unpartitioned build.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.runner import run_and_summarize
from repro.experiments.spec import RunSpec
from repro.memory.presets import (
    nvm_bandwidth_scaled,
    nvm_latency_scaled,
    optane_pm,
)
from repro.util.units import MIB

GOLDEN_PATH = Path(__file__).parent / "goldens" / "equivalence.json"

#: Experiments whose full payload (not just its digest) is pinned.
PINNED_FULL = ("e1", "e5", "e9")

#: One representative spec per registered experiment, mirroring the spec
#: shapes each module sweeps (same workloads, policies, NVM configs).
SPOT_SPECS: dict[str, RunSpec] = {
    "e1": RunSpec("cg", "nvm-only", nvm_bandwidth_scaled(0.5), fast=True),
    "e2": RunSpec("heat", "nvm-only", nvm_bandwidth_scaled(0.25), fast=True),
    "e3": RunSpec("sparselu", "tahoe", nvm_latency_scaled(4.0), fast=True),
    "e4": RunSpec("heat", "xmem", nvm_bandwidth_scaled(0.5), fast=True),
    "e5": RunSpec("cg", "tahoe", nvm_bandwidth_scaled(0.5), fast=True),
    "e6": RunSpec("cg", "tahoe", nvm_bandwidth_scaled(0.5), n_workers=4, fast=True),
    "e7": RunSpec(
        "heat", "tahoe", nvm_bandwidth_scaled(0.5), dram_capacity=24 * MIB, fast=True
    ),
    "e8": RunSpec("sparselu", "tahoe", optane_pm(), fast=True),
    "e9": RunSpec(
        "cg",
        "tahoe",
        nvm_bandwidth_scaled(0.5),
        dram_capacity=28 * MIB,
        fast=True,
        policy_overrides={"name": "tahoe-greedy", "solver": "greedy"},
    ),
    "e10": RunSpec("heat", "oracle-static", nvm_bandwidth_scaled(0.5), fast=True),
    "e11": RunSpec(
        "cg", "tahoe", nvm_bandwidth_scaled(0.5), scheduler="critical-path", fast=True
    ),
    "e12": RunSpec(
        "cg", "tahoe", nvm_bandwidth_scaled(0.5), fast=True, faults="flaky-copies"
    ),
    "e13": RunSpec(
        "heat",
        "tahoe",
        nvm_bandwidth_scaled(0.5),
        fast=True,
        stream={"horizon_s": 0.2, "round_interval_s": 0.005, "seed": 7},
    ),
}

#: Not tied to an experiment id, but exercises the one graph transform
#: that mutates graphs in place (partitioning) against the memo layer.
EXTRA_SPECS: dict[str, RunSpec] = {
    "partitioned": RunSpec("heat", "tahoe-part", nvm_bandwidth_scaled(0.5), fast=True),
}


def _canonical_digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def reset_process_caches() -> None:
    """Start from a cold process state so goldens are order-independent.

    The platform-calibration cache is keyed by device *names* (as the
    paper's per-platform offline step prescribes), so a run can reuse a
    calibration computed for a same-named machine earlier in the process;
    the golden checks pin the cold-process result instead.  The uid/tid
    counters are process-global too, and absolute uid values steer the
    iteration order of uid *sets* (and with it float summation order), so
    they are rewound as well.
    """
    import itertools

    from repro.core import knapsack, manager
    from repro.tasking import dataobj, task

    dataobj._uid_counter = itertools.count(1)
    task._tid_counter = itertools.count(1)
    manager._CALIBRATION_CACHE.clear()
    clear_knapsack = getattr(knapsack, "clear_solver_cache", None)
    if clear_knapsack is not None:
        clear_knapsack()
    try:
        from repro.workloads.memo import clear_build_cache
    except ImportError:  # pre-PR code path (golden generation)
        pass
    else:
        clear_build_cache()


@pytest.fixture(scope="module")
def goldens() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_every_experiment_has_a_spot_spec() -> None:
    from repro.experiments.registry import EXPERIMENTS

    assert set(SPOT_SPECS) == set(EXPERIMENTS)


@pytest.mark.parametrize("exp", sorted(SPOT_SPECS))
def test_summary_matches_pre_pr_golden(exp: str, goldens: dict) -> None:
    reset_process_caches()
    golden = goldens[exp]
    spec = SPOT_SPECS[exp]
    assert spec.cache_key() == golden["cache_key"], (
        f"{exp}: cache key drifted — cached pre-PR results became unreachable"
    )
    payload = run_and_summarize(spec).to_payload()
    assert _canonical_digest(payload) == golden["payload_sha256"], (
        f"{exp}: result payload differs from the pre-PR golden"
    )
    if exp in PINNED_FULL:
        assert payload == golden["payload"]


@pytest.mark.parametrize("key", sorted({**SPOT_SPECS, **EXTRA_SPECS}))
def test_repeat_run_hits_memos_and_stays_exact(key: str) -> None:
    spec = {**SPOT_SPECS, **EXTRA_SPECS}[key]
    first = run_and_summarize(spec).to_payload()
    second = run_and_summarize(spec).to_payload()
    assert first == second, f"{key}: warm-memo rerun diverged from cold run"


@pytest.mark.parametrize(
    "workload,params,scheduler",
    [
        ("cg", dict(n_chunks=6, iterations=4), None),
        ("heat", dict(grid=6, iterations=4), "critical-path"),
        ("sparselu", dict(n_blocks=6), "memory-aware"),
    ],
)
def test_soa_executor_matches_object_mode_reference(workload, params, scheduler):
    """Real workloads through the SoA executor vs. the retired object-mode
    loop (tests/reference_executor.py): every TaskRecord field identical.
    The property suite covers random programs; this pins the shapes the
    tier-1 experiments actually run."""
    from repro.core.manager import DataManagerPolicy
    from repro.memory.hms import HeterogeneousMemorySystem
    from repro.memory.presets import dram
    from repro.tasking.executor import Executor, ExecutorConfig
    from repro.workloads import build

    from tests.reference_executor import ReferenceExecutor

    cfg = ExecutorConfig(n_workers=4, scheduler=scheduler)
    nvm = nvm_bandwidth_scaled(0.5)
    w = build(workload, **params)  # one graph: uids must line up across runs
    traces = []
    for cls in (Executor, ReferenceExecutor):
        hms = HeterogeneousMemorySystem(dram(), nvm)
        traces.append(cls(hms, cfg).run(w.graph, DataManagerPolicy()))
    got, want = traces
    assert len(got.records) == len(want.records)
    for g, w in zip(got.records, want.records):
        assert (
            g.task.name,
            g.worker,
            g.start,
            g.finish,
            g.compute_time,
            g.memory_time,
            g.overhead_time,
            g.stall_time,
            dict(g.residency),
        ) == (
            w.task.name,
            w.worker,
            w.start,
            w.finish,
            w.compute_time,
            w.memory_time,
            w.overhead_time,
            w.stall_time,
            dict(w.residency),
        )
    assert got.makespan == want.makespan
    assert got.summary() == want.summary()
