"""Shared test helpers (graph builders, run shortcuts)."""

from __future__ import annotations

from repro.baselines import NVMOnlyPolicy
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.presets import dram
from repro.tasking.dataobj import DataObject
from repro.tasking.executor import Executor, ExecutorConfig
from repro.tasking.footprints import read_footprint, update_footprint, write_footprint
from repro.tasking.graph import TaskGraph
from repro.tasking.task import Task
from repro.util.units import MIB

def make_chain_graph(n_tasks: int = 6, obj_mib: float = 4.0) -> TaskGraph:
    """A serial chain: each task read-writes one shared object."""
    graph = TaskGraph()
    obj = DataObject(name="shared", size_bytes=int(obj_mib * MIB))
    for i in range(n_tasks):
        graph.add(
            Task(
                name=f"step{i}",
                type_name="step",
                accesses={obj: update_footprint(obj.size_bytes, obj.size_bytes)},
                compute_time=1e-4,
                iteration=i,
            )
        )
    return graph


def make_fork_join_graph(width: int = 8, obj_mib: float = 2.0) -> TaskGraph:
    """source -> N independent workers -> sink (classic fork/join)."""
    graph = TaskGraph()
    src_obj = DataObject(name="input", size_bytes=int(obj_mib * MIB))
    outs = [
        DataObject(name=f"out{i}", size_bytes=int(obj_mib * MIB)) for i in range(width)
    ]
    graph.add(
        Task(
            name="source",
            type_name="source",
            accesses={src_obj: write_footprint(src_obj.size_bytes)},
            compute_time=1e-4,
        )
    )
    for i, out in enumerate(outs):
        graph.add(
            Task(
                name=f"work{i}",
                type_name="work",
                accesses={
                    src_obj: read_footprint(src_obj.size_bytes),
                    out: write_footprint(out.size_bytes),
                },
                compute_time=5e-4,
            )
        )
    graph.add(
        Task(
            name="sink",
            type_name="sink",
            accesses={o: read_footprint(o.size_bytes) for o in outs},
            compute_time=1e-4,
        )
    )
    return graph


def run_graph(graph, dram_dev, nvm_dev, policy=None, workers: int = 4, **cfg_kw):
    """Convenience: run a graph on a fresh machine; returns the trace."""
    machine = HeterogeneousMemorySystem(dram_dev, nvm_dev)
    cfg = ExecutorConfig(n_workers=workers, **cfg_kw)
    return Executor(machine, cfg).run(graph, policy or NVMOnlyPolicy())


def dram_for(graph):
    """A DRAM device big enough to hold the graph's working set."""
    return dram(max(2 * graph.total_object_bytes(), 64 * MIB))
