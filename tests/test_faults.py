"""Fault-injection subsystem: plans, injector, resilience, cache neutrality."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manager import DataManagerPolicy
from repro.experiments.runner import execute_spec
from repro.experiments.spec import RunSpec, canonical_json
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    PRESETS,
    CapacityLoss,
    DegradedWindow,
    FaultPlan,
    resolve_plan,
    stress_plan,
)
from repro.memory.allocator import FreeListAllocator
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.migration import (
    DEFAULT_RETRY_BACKOFF_S,
    FAILURE_DETECT_FRACTION,
    MigrationEngine,
    copy_time,
)
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.executor import Executor, ExecutorConfig
from repro.util.units import MIB

from tests.helpers import make_fork_join_graph


class TestFaultPlan:
    def test_roundtrip_json(self):
        plan = FaultPlan(
            seed=7,
            copy_fail_prob=0.25,
            copy_fail_every=3,
            windows=(
                DegradedWindow("nvm", 0.0, 1.5, bandwidth_scale=0.5),
                DegradedWindow("dram", 1e-3, latency_scale=2.0),  # open-ended
            ),
            capacity_losses=(CapacityLoss("dram", 2e-3, 4 * MIB),),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        # inf end_s must survive JSON as null
        assert json.loads(plan.to_json())["windows"][1]["end_s"] is None

    def test_hashable_and_frozen(self):
        a = stress_plan(0.5)
        b = stress_plan(0.5)
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.seed = 1

    def test_dicts_coerced(self):
        plan = FaultPlan(
            windows=[{"device": "nvm", "bandwidth_scale": 0.5}],
            capacity_losses=[{"device": "dram", "lose_bytes": MIB}],
        )
        assert isinstance(plan.windows[0], DegradedWindow)
        assert isinstance(plan.capacity_losses[0], CapacityLoss)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(copy_fail_prob=1.5)
        with pytest.raises(ValueError):
            DegradedWindow(bandwidth_scale=0.0)
        with pytest.raises(ValueError):
            DegradedWindow(start_s=1.0, end_s=0.5)
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"bogus_field": 1})

    def test_is_empty_and_stress_dial(self):
        assert FaultPlan().is_empty
        assert stress_plan(0.0).is_empty
        assert not stress_plan(0.25).is_empty
        with pytest.raises(ValueError):
            stress_plan(1.5)

    def test_presets_resolve(self):
        for name in PRESETS:
            plan = resolve_plan(name)
            assert plan is None or isinstance(plan, FaultPlan)
        assert resolve_plan("none") is None  # empty normalizes to None

    def test_resolve_forms(self, tmp_path):
        plan = PRESETS["flaky-copies"]
        assert resolve_plan(plan) is plan
        assert resolve_plan(plan.to_json()) == plan
        assert resolve_plan(plan.to_dict()) == plan
        assert resolve_plan(None) is None
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert resolve_plan(f"@{path}") == plan
        with pytest.raises(KeyError, match="did you mean"):
            resolve_plan("moderat")
        with pytest.raises(TypeError):
            resolve_plan(42)


class TestInjector:
    def _machine(self):
        return HeterogeneousMemorySystem(dram(64 * MIB), nvm_bandwidth_scaled(0.5))

    def test_deterministic_per_seed(self):
        plan = FaultPlan(seed=3, copy_fail_prob=0.5)
        seq = []
        for _ in range(2):
            inj = FaultInjector(plan)
            seq.append(
                [inj.copy_attempt_fails(inj.begin_copy(), 0, 0.0, 1, 100) for _ in range(50)]
            )
        assert seq[0] == seq[1]
        assert any(seq[0]) and not all(seq[0])

    def test_every_nth(self):
        inj = FaultInjector(FaultPlan(copy_fail_every=3))
        fails = [
            inj.copy_attempt_fails(inj.begin_copy(), 0, 0.0, 1, 100) for _ in range(9)
        ]
        assert fails == [False, False, True] * 3
        # retries (attempt > 0) of the nth copy succeed
        assert not inj.copy_attempt_fails(3, 1, 0.0, 1, 100)

    def test_window_penalties_and_roles(self):
        plan = FaultPlan(
            windows=(DegradedWindow("nvm", 1.0, 2.0, bandwidth_scale=0.5, latency_scale=3.0),)
        )
        inj = FaultInjector.for_hms(plan, self._machine())
        nvm_name = self._machine().nvm.name
        assert inj.bw_penalty(nvm_name, 1.5) == pytest.approx(2.0)
        assert inj.lat_penalty(nvm_name, 1.5) == pytest.approx(3.0)
        assert inj.bw_penalty(nvm_name, 2.5) == 1.0  # outside the window
        assert inj.bw_penalty("dram", 1.5) == 1.0  # other device
        assert inj.copy_penalty("dram", nvm_name, 1.5) == pytest.approx(2.0)

    def test_capacity_losses_delivered_once_in_order(self):
        plan = FaultPlan(
            capacity_losses=(
                CapacityLoss("dram", 2.0, MIB),
                CapacityLoss("dram", 1.0, 2 * MIB),
            )
        )
        inj = FaultInjector(plan)
        assert [c.at_s for c in inj.pop_capacity_losses(1.5)] == [1.0]
        assert [c.at_s for c in inj.pop_capacity_losses(5.0)] == [2.0]
        assert inj.pop_capacity_losses(10.0) == []

    def test_degraded_slices_clip_to_makespan(self):
        plan = FaultPlan(windows=(DegradedWindow("nvm", 0.5, bandwidth_scale=0.5),))
        inj = FaultInjector(plan)
        (s,) = inj.degraded_slices(2.0)
        assert (s["start_s"], s["end_s"]) == (0.5, 2.0)
        assert inj.degraded_time(2.0) == pytest.approx(1.5)
        assert inj.degraded_slices(0.25) == []


class TestEngineRetry:
    def _devices(self):
        return dram(64 * MIB), nvm_bandwidth_scaled(0.5)

    def test_retry_then_recover(self):
        d, n = self._devices()
        inj = FaultInjector(FaultPlan(copy_fail_every=1))  # first attempt always fails
        eng = MigrationEngine(injector=inj)
        rec = eng.schedule(1, MIB, n, d, request_time=0.0)
        base = copy_time(MIB, n, d, eng.overhead_s)
        assert rec.attempts == 2 and not rec.failed
        assert rec.end_time == pytest.approx(
            base * FAILURE_DETECT_FRACTION + DEFAULT_RETRY_BACKOFF_S + base
        )
        assert eng.retry_count == 1 and eng.recovered_count == 1 and eng.failed_count == 0
        assert eng.available_at(1) == rec.end_time

    def test_permanent_failure(self):
        d, n = self._devices()
        inj = FaultInjector(FaultPlan(copy_fail_prob=1.0))
        eng = MigrationEngine(injector=inj)
        rec = eng.schedule(1, MIB, n, d, request_time=0.0)
        assert rec.failed and rec.attempts == eng.max_retries + 1
        assert rec.exposed == 0.0
        assert eng.failed_count == 1 and eng.recovered_count == 0
        # nothing landed: object availability and byte counts untouched
        assert eng.available_at(1) == 0.0
        assert eng.migrated_bytes == 0
        # but the lane burned time on the failed attempts
        assert eng.lane_free_at > 0.0

    def test_critical_copy_never_fails(self):
        d, n = self._devices()
        inj = FaultInjector(FaultPlan(copy_fail_prob=1.0))
        eng = MigrationEngine(injector=inj)
        rec = eng.schedule(1, MIB, d, n, request_time=0.0, critical=True)
        assert not rec.failed
        assert rec.attempts == eng.max_retries + 1
        assert eng.available_at(1) == rec.end_time

    def test_degraded_window_stretches_copy(self):
        d, n = self._devices()
        inj = FaultInjector(
            FaultPlan(windows=(DegradedWindow(n.name, bandwidth_scale=0.5),))
        )
        eng = MigrationEngine(injector=inj)
        rec = eng.schedule(1, MIB, n, d, request_time=0.0)
        assert rec.duration == pytest.approx(2.0 * copy_time(MIB, n, d, eng.overhead_s))

    def test_no_injector_unchanged(self):
        d, n = self._devices()
        eng = MigrationEngine()
        rec = eng.schedule(1, MIB, n, d, request_time=0.0)
        assert rec.attempts == 1 and not rec.failed
        assert eng.retry_count == 0 and eng.failed_count == 0


class TestCapacityLossMechanics:
    def test_allocator_reduce_capacity(self):
        alloc = FreeListAllocator(capacity=10 * MIB)
        alloc.alloc(4 * MIB)
        removed = alloc.reduce_capacity(8 * MIB)
        assert removed == 6 * MIB  # only free space is carvable
        assert alloc.capacity == 4 * MIB
        assert alloc.free_bytes == 0
        # a second call with nothing free removes nothing
        assert alloc.reduce_capacity(MIB) == 0

    def test_hms_dram_loss_evicts_largest_first(self):
        from repro.tasking.dataobj import DataObject

        hms = HeterogeneousMemorySystem(dram(16 * MIB), nvm_bandwidth_scaled(0.5))
        small = DataObject(name="small", size_bytes=2 * MIB)
        big = DataObject(name="big", size_bytes=8 * MIB)
        for obj in (small, big):
            hms.allocate(obj, hms.dram)
        hms.mark_dirty(big)
        lost, evicted = hms.lose_capacity("dram", 10 * MIB)
        assert lost == 10 * MIB
        assert [(o.name, dirty) for o, dirty in evicted] == [("big", True)]
        assert hms.placement_of(big).device == hms.nvm.name
        assert hms.placement_of(small).device == hms.dram.name
        hms.check_invariants()

    def test_hms_nvm_loss_never_evicts(self):
        from repro.tasking.dataobj import DataObject

        hms = HeterogeneousMemorySystem(dram(16 * MIB), nvm_bandwidth_scaled(0.5, 8 * MIB))
        obj = DataObject(name="o", size_bytes=6 * MIB)
        hms.allocate(obj, hms.nvm)
        lost, evicted = hms.lose_capacity(hms.nvm, 8 * MIB)
        assert lost == 2 * MIB  # clamped to free space
        assert evicted == []
        assert hms.placement_of(obj).device == hms.nvm.name


NVM = nvm_bandwidth_scaled(0.5)


class TestEndToEnd:
    def test_fault_free_summary_has_no_fault_keys(self):
        trace = execute_spec(RunSpec("heat", "tahoe", NVM, fast=True))
        assert trace.faults is None
        assert "faults" not in trace.summary()
        assert "migrations_failed" not in trace.meta.get("manager_stats", {})

    def test_flaky_copies_run_completes_with_accounting(self):
        trace = execute_spec(RunSpec("cg", "tahoe", NVM, fast=True, faults="flaky-copies"))
        trace.validate()
        f = trace.faults
        assert f is not None and f["injected_copy_failures"] >= 1
        assert f["copy_retries"] >= f["recovered_copies"]
        assert f["injected_copy_failures"] == sum(
            1 for e in f["events"] if e["kind"] == "copy-fail"
        )
        stats = trace.meta["manager_stats"]
        assert "migrations_failed" in stats and "migrations_recovered" in stats

    def test_capacity_crunch_evicts_and_completes(self):
        trace = execute_spec(
            RunSpec("heat", "tahoe", NVM, fast=True, faults="capacity-crunch")
        )
        trace.validate()
        f = trace.faults
        assert f["capacity_lost_bytes"] == 128 * MIB
        assert any(e["kind"] == "capacity-loss" for e in f["events"])

    def test_degradation_slows_the_run(self):
        clean = execute_spec(RunSpec("heat", "nvm-only", NVM, fast=True))
        hurt = execute_spec(RunSpec("heat", "nvm-only", NVM, fast=True, faults="brownout"))
        assert hurt.makespan > clean.makespan
        assert hurt.faults["degraded_time_s"] == pytest.approx(hurt.makespan)


class TestCacheKeyNeutrality:
    def test_no_faults_key_when_none(self):
        spec = RunSpec("heat", "tahoe", NVM, fast=True)
        assert "faults" not in spec.to_dict()

    def test_empty_plan_is_the_same_spec(self):
        plain = RunSpec("heat", "tahoe", NVM, fast=True)
        for empty in (None, "none", FaultPlan(), stress_plan(0.0)):
            spec = RunSpec("heat", "tahoe", NVM, fast=True, faults=empty)
            assert spec == plain
            assert spec.cache_key() == plain.cache_key()

    def test_real_plan_changes_key_and_label(self):
        plain = RunSpec("heat", "tahoe", NVM, fast=True)
        faulted = RunSpec("heat", "tahoe", NVM, fast=True, faults="moderate")
        assert faulted.cache_key() != plain.cache_key()
        assert "faults(" in faulted.label() and "faults(" not in plain.label()
        # spec round-trips with the plan intact
        assert RunSpec.from_dict(faulted.to_dict()) == faulted


# ----------------------------------------------------------------------
# Property: any seeded plan -> completes, never faster, deterministic
# ----------------------------------------------------------------------
@st.composite
def fault_plans(draw):
    windows = tuple(
        DegradedWindow(
            device=draw(st.sampled_from(["dram", "nvm"])),
            start_s=draw(st.floats(0.0, 2e-3)),
            end_s=draw(st.floats(3e-3, 1.0)),
            bandwidth_scale=draw(st.floats(0.2, 1.0)),
            latency_scale=draw(st.floats(1.0, 4.0)),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    losses = tuple(
        CapacityLoss(
            device="dram",
            at_s=draw(st.floats(0.0, 5e-3)),
            lose_bytes=draw(st.integers(0, 6)) * MIB,
        )
        for _ in range(draw(st.integers(0, 1)))
    )
    return FaultPlan(
        seed=draw(st.integers(0, 2**20)),
        copy_fail_prob=draw(st.sampled_from([0.0, 0.3, 0.7, 1.0])),
        copy_fail_every=draw(st.sampled_from([None, 1, 2, 3])),
        windows=windows,
        capacity_losses=losses,
    )


def _run_faulted(plan):
    graph = make_fork_join_graph(width=8, obj_mib=4.0)
    hms = HeterogeneousMemorySystem(dram(8 * MIB), nvm_bandwidth_scaled(0.25, 256 * MIB))
    injector = FaultInjector.for_hms(plan, hms) if plan is not None else None
    trace = Executor(hms, ExecutorConfig(n_workers=3), injector=injector).run(
        graph, DataManagerPolicy()
    )
    trace.validate()
    return trace


def _digest(trace):
    summary = dict(trace.summary())
    # strip nothing: the whole summary (including fault events) must be
    # process- and repetition-stable for cacheability
    return canonical_json(summary)


@settings(max_examples=25, deadline=None)
@given(plan=fault_plans())
def test_faulted_runs_complete_and_never_beat_fault_free(plan):
    baseline = _run_faulted(None).makespan
    trace = _run_faulted(plan)
    assert trace.makespan >= baseline - 1e-12
    if plan.is_empty:
        return
    f = trace.faults
    assert f["failed_migrations"] + f["recovered_copies"] <= f["injected_copy_failures"] or (
        f["injected_copy_failures"] == 0
    )


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(0, 100))
def test_identical_plan_and_seed_identical_digest(plan, seed):
    plan = plan.replace(seed=seed)
    assert _digest(_run_faulted(plan)) == _digest(_run_faulted(plan))
