"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _session_result_cache(tmp_path_factory):
    """Keep the suite hermetic: experiment runs cache into a throwaway
    per-session directory instead of the user's ~/.cache/repro."""
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old

from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.presets import dram, nvm_bandwidth_scaled, nvm_latency_scaled
from repro.profiling.calibration import calibrate
from repro.tasking.executor import ExecutorConfig
from tests.helpers import make_chain_graph, make_fork_join_graph


@pytest.fixture
def dram_dev():
    return dram()


@pytest.fixture
def nvm_bw():
    """NVM with half DRAM bandwidth."""
    return nvm_bandwidth_scaled(0.5)


@pytest.fixture
def nvm_lat():
    """NVM with 4x DRAM latency."""
    return nvm_latency_scaled(4.0)


@pytest.fixture
def hms(dram_dev, nvm_bw):
    return HeterogeneousMemorySystem(dram_dev, nvm_bw)


@pytest.fixture
def exec_config():
    return ExecutorConfig(n_workers=4)


@pytest.fixture
def chain_graph():
    return make_chain_graph()


@pytest.fixture
def fork_join_graph():
    return make_fork_join_graph()


@pytest.fixture(scope="session")
def calibration_bw():
    """Session-cached calibration for the bw-1/2 platform."""
    return calibrate(dram(), nvm_bandwidth_scaled(0.5), ExecutorConfig(n_workers=4))
