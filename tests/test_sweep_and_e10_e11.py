"""Sweep harness and the E10/E11 extension experiments."""

import pytest

from repro.experiments.e10_energy_oracle import run as run_e10
from repro.experiments.e11_scheduler import run as run_e11
from repro.experiments.sweep import pivot, sweep
from repro.memory.presets import nvm_bandwidth_scaled
from repro.util.units import MIB

pytestmark = pytest.mark.integration


class TestSweep:
    def test_cartesian_product_and_records(self):
        recs = sweep(
            workload="heat",
            policy=["nvm-only", "xmem"],
            nvm=[nvm_bandwidth_scaled(0.5), nvm_bandwidth_scaled(0.25)],
            dram_capacity=[128 * MIB, 256 * MIB],
        )
        assert len(recs) == 1 * 2 * 2 * 2
        for r in recs:
            assert r["makespan"] > 0
            assert r["policy"] in ("nvm-only", "xmem")
            assert r["nvm"] in ("nvm-bw-0.5", "nvm-bw-0.25")

    def test_sweep_shape_more_bandwidth_less_time(self):
        recs = sweep(
            workload="heat",
            policy="nvm-only",
            nvm=[nvm_bandwidth_scaled(0.5), nvm_bandwidth_scaled(0.125)],
        )
        by_nvm = {r["nvm"]: r["makespan"] for r in recs}
        assert by_nvm["nvm-bw-0.125"] > by_nvm["nvm-bw-0.5"]

    def test_pivot_arranges_cells(self):
        recs = sweep(
            workload="heat",
            policy=["nvm-only", "xmem"],
            nvm=nvm_bandwidth_scaled(0.5),
            dram_capacity=[128 * MIB, 256 * MIB],
        )
        table = pivot(recs, rows="dram_capacity", cols="policy")
        assert len(table.rows) == 2
        assert table.columns[1:] == ["nvm-only", "xmem"]
        d = table.to_dicts()
        assert all(isinstance(row["xmem"], float) for row in d)

    def test_pivot_missing_cell_dash(self):
        recs = sweep(workload="heat", policy="nvm-only", nvm=nvm_bandwidth_scaled(0.5))
        table = pivot(recs, rows="workload", cols="policy")
        assert table.to_dicts()[0]["nvm-only"] > 0


class TestE10Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e10(fast=True, workloads=("cg", "heat"))

    def test_tahoe_near_oracle(self, result):
        for wl in ("cg", "heat"):
            assert result.metrics[f"{wl}/oracle_fraction"] > 0.85

    def test_oracle_not_worse_than_nvm_only(self, result):
        for wl in ("cg", "heat"):
            assert (
                result.metrics[f"{wl}/oracle-static"]
                <= result.metrics[f"{wl}/nvm-only"] + 0.02
            )

    def test_energy_tables_rendered(self, result):
        text = result.render()
        assert "NVM MiB written" in text and "total J" in text


class TestE11Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e11(fast=True, workloads=("cg", "sparselu"))

    def test_critical_path_never_hurts(self, result):
        m = result.metrics
        for wl in ("cg", "sparselu"):
            assert m[f"{wl}/critical-path"] <= m[f"{wl}/fifo"] + 0.02

    def test_memory_aware_bounded_regression(self, result):
        # Memory-aware ordering scores once at enable time; on chain-heavy
        # DAGs deferring a cold-data task can delay its dependents, so it
        # is bounded-worse than FIFO rather than uniformly better.
        m = result.metrics
        for wl in ("cg", "sparselu"):
            assert m[f"{wl}/memory-aware"] <= m[f"{wl}/fifo"] * 1.15

    def test_scheduling_alone_recovers_nothing(self, result):
        m = result.metrics
        for wl in ("cg", "sparselu"):
            assert m[f"{wl}/memaware-nvmonly"] >= m[f"{wl}/memory-aware"] - 0.02
