"""Access modes, patterns, footprints and their ground-truth timing."""

import pytest

from repro.memory.device import MISS_BASE_LATENCY_S
from repro.memory.presets import dram, nvm_bandwidth_scaled, nvm_latency_scaled
from repro.tasking.access import (
    BLOCKED,
    PATTERNS,
    POINTER_CHASE,
    RANDOM,
    STREAMING,
    AccessMode,
    AccessPattern,
    ObjectAccess,
    merge_accesses,
)
from repro.tasking.footprints import (
    WORD_BYTES,
    chase_footprint,
    read_footprint,
    update_footprint,
    write_footprint,
)
from repro.util.units import CACHELINE_BYTES, MIB


class TestAccessMode:
    def test_reads_writes_flags(self):
        assert AccessMode.READ.reads and not AccessMode.READ.writes
        assert AccessMode.WRITE.writes and not AccessMode.WRITE.reads
        assert AccessMode.READWRITE.reads and AccessMode.READWRITE.writes


class TestObjectAccess:
    def test_mode_count_consistency_enforced(self):
        with pytest.raises(ValueError):
            ObjectAccess(AccessMode.READ, loads=1, stores=1)
        with pytest.raises(ValueError):
            ObjectAccess(AccessMode.WRITE, loads=1, stores=1)

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            ObjectAccess(AccessMode.READ, loads=1, stores=0, span=(0.5, 0.2))
        with pytest.raises(ValueError):
            ObjectAccess(AccessMode.READ, loads=1, stores=0, span=(-0.1, 0.5))

    def test_miss_counts_follow_hit_ratio(self):
        acc = ObjectAccess(AccessMode.READ, loads=1000, stores=0, pattern=STREAMING)
        assert acc.miss_loads == pytest.approx(1000 * (1 - STREAMING.hit_ratio))

    def test_streaming_traffic_equals_bytes_swept(self):
        """The word-granularity/line-size convention: a pure sequential
        sweep's main-memory traffic equals the bytes touched."""
        nbytes = 8 * MIB
        acc = read_footprint(nbytes, STREAMING)
        assert acc.read_traffic_bytes == pytest.approx(nbytes, rel=0.01)

    def test_random_traffic_is_amplified(self):
        nbytes = MIB
        acc = read_footprint(nbytes, RANDOM)
        # random word gathers pull a full line per access: ~8x the bytes
        assert acc.read_traffic_bytes > 5 * nbytes

    def test_scaled(self):
        acc = ObjectAccess(AccessMode.READWRITE, loads=100, stores=50)
        half = acc.scaled(0.5)
        assert half.loads == 50 and half.stores == 25
        assert half.pattern is acc.pattern


class TestGroundTruthTiming:
    def test_streaming_bandwidth_bound(self):
        acc = read_footprint(64 * MIB, STREAMING)
        d = dram()
        t = acc.memory_time(d)
        assert t == pytest.approx(acc.read_traffic_bytes / d.read_bandwidth, rel=0.05)

    def test_chase_latency_bound(self):
        acc = chase_footprint(100_000)
        d = dram()
        expected = (
            acc.miss_loads * (MISS_BASE_LATENCY_S + d.read_latency_s) / POINTER_CHASE.mlp
        )
        assert acc.memory_time(d) == pytest.approx(expected, rel=0.05)

    def test_bw_scaling_hits_streaming_not_chase(self):
        stream = read_footprint(64 * MIB, STREAMING)
        chase = chase_footprint(100_000)
        d, n = dram(), nvm_bandwidth_scaled(0.5)
        assert stream.memory_time(n) / stream.memory_time(d) == pytest.approx(2.0, rel=0.05)
        assert chase.memory_time(n) / chase.memory_time(d) == pytest.approx(1.0, rel=0.05)

    def test_lat_scaling_hits_chase_not_streaming(self):
        stream = read_footprint(64 * MIB, STREAMING)
        chase = chase_footprint(100_000)
        d, n = dram(), nvm_latency_scaled(4.0)
        assert stream.memory_time(n) / stream.memory_time(d) == pytest.approx(1.0, rel=0.05)
        ratio = chase.memory_time(n) / chase.memory_time(d)
        assert 1.5 < ratio < 3.0  # diluted by the fixed base miss cost

    def test_contention_slowdown_applies_to_bandwidth_term_only(self):
        stream = read_footprint(64 * MIB, STREAMING)
        chase = chase_footprint(100_000)
        d = dram()
        assert stream.memory_time(d, bw_slowdown=2.0) == pytest.approx(
            2 * stream.memory_time(d), rel=0.05
        )
        assert chase.memory_time(d, bw_slowdown=2.0) == pytest.approx(
            chase.memory_time(d), rel=0.05
        )


class TestMerge:
    def test_merge_modes_and_counts(self):
        a = ObjectAccess(AccessMode.READ, loads=10, stores=0)
        b = ObjectAccess(AccessMode.WRITE, loads=0, stores=5)
        m = merge_accesses(a, b)
        assert m.mode is AccessMode.READWRITE
        assert m.loads == 10 and m.stores == 5

    def test_merge_spans_union(self):
        a = ObjectAccess(AccessMode.READ, loads=1, stores=0, span=(0.0, 0.25))
        b = ObjectAccess(AccessMode.READ, loads=1, stores=0, span=(0.5, 0.75))
        m = merge_accesses(a, b)
        assert m.span == (0.0, 0.75)

    def test_merge_span_with_none_is_none(self):
        a = ObjectAccess(AccessMode.READ, loads=1, stores=0, span=(0.0, 0.25))
        b = ObjectAccess(AccessMode.READ, loads=1, stores=0)
        assert merge_accesses(a, b).span is None

    def test_merge_pattern_from_heavier_side(self):
        a = ObjectAccess(AccessMode.READ, loads=100, stores=0, pattern=RANDOM)
        b = ObjectAccess(AccessMode.READ, loads=1, stores=0, pattern=STREAMING)
        assert merge_accesses(a, b).pattern is RANDOM


class TestFootprints:
    def test_read_footprint_word_counts(self):
        acc = read_footprint(800, reuse=2.0)
        assert acc.loads == 200 and acc.stores == 0

    def test_write_footprint(self):
        acc = write_footprint(WORD_BYTES * 7)
        assert acc.stores == 7 and acc.loads == 0

    def test_update_footprint(self):
        acc = update_footprint(80, 40)
        assert acc.mode is AccessMode.READWRITE
        assert acc.loads == 10 and acc.stores == 5

    def test_chase_footprint(self):
        acc = chase_footprint(1000, stores_per_hop=0.1)
        assert acc.loads == 1000 and acc.stores == 100
        assert acc.pattern is POINTER_CHASE

    def test_patterns_registry(self):
        assert set(PATTERNS) == {"streaming", "blocked", "pointer-chase", "random"}

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            AccessPattern("bad", hit_ratio=1.5, mlp=1)
        with pytest.raises(ValueError):
            AccessPattern("bad", hit_ratio=0.5, mlp=0)
