"""Object-mode reference executor for differential testing.

This is the pre-rewrite dispatch loop, kept verbatim (telemetry plane
stripped — the reference is only used for timing/trace equivalence): per
task Python object traversal, dict-based indegree/ready bookkeeping, a
``(free_at, wid)`` worker heap, ``memory_time`` calls per access, and the
double ``TaskRecord`` construction around ``after_task``.  The production
:class:`repro.tasking.executor.Executor` rewrote all of this around a
structure-of-arrays core; the property suite asserts both produce
byte-identical traces on random programs, with and without migrations and
fault injection.
"""

from __future__ import annotations

import heapq

from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.migration import MigrationEngine
from repro.tasking.executor import ExecContext, ExecutorConfig, PlacementPolicy
from repro.tasking.graph import TaskGraph
from repro.tasking.scheduler import FIFOPolicy, make_scheduler
from repro.tasking.task import Task
from repro.tasking.trace import ExecutionTrace, TaskRecord

__all__ = ["ReferenceExecutor"]


class ReferenceExecutor:
    """Runs one task graph to completion in virtual time (object mode)."""

    def __init__(self, hms: HeterogeneousMemorySystem, config=None, injector=None):
        self.hms = hms
        self.config = config or ExecutorConfig()
        sched = self.config.scheduler
        if isinstance(sched, str):
            sched = make_scheduler(sched)
        self.scheduler = sched if sched is not None else FIFOPolicy()
        self.injector = injector

    # ------------------------------------------------------------------
    def run(self, graph: TaskGraph, policy: PlacementPolicy) -> ExecutionTrace:
        cfg = self.config
        injector = self.injector
        engine = MigrationEngine(overhead_s=cfg.migration_overhead_s, injector=injector)
        ctx = ExecContext(graph, self.hms, engine, cfg)

        workers = [(0.0, w) for w in range(cfg.n_workers)]
        heapq.heapify(workers)
        completions: list[tuple[float, int]] = []
        running: list[tuple[float, Task, frozenset[str]]] = []
        records: list[TaskRecord] = []

        policy.on_run_start(ctx)
        for obj in graph.objects:
            if not self.hms.is_placed(obj):
                self.hms.allocate(obj, self.hms.nvm)

        working_set = graph.total_object_bytes()
        self.scheduler.prepare(graph)
        if hasattr(self.scheduler, "bind"):
            self.scheduler.bind(self.hms)
        indegree = {t.tid: graph.in_degree(t) for t in graph.tasks}
        for t in graph.tasks:
            if indegree[t.tid] == 0:
                self.scheduler.push(t)

        n_done = 0
        n_total = len(graph.tasks)
        ready_at: dict[int, float] = {
            t.tid: 0.0 for t in graph.tasks if indegree[t.tid] == 0
        }

        def drain_completions(up_to: float) -> None:
            nonlocal n_done
            while completions and completions[0][0] <= up_to + 1e-15:
                t_done, tid = heapq.heappop(completions)
                done = graph.task(tid)
                n_done += 1
                for succ in graph.successors(done):
                    indegree[succ.tid] -= 1
                    if indegree[succ.tid] == 0:
                        ready_at[succ.tid] = t_done
                        self.scheduler.push(succ)

        capacity_lost = 0
        emergency_evictions = 0

        hms = self.hms
        scheduler = self.scheduler
        placement_of = hms.placement_of
        mark_dirty = hms.mark_dirty
        available_at = engine.available_at
        note_first_use = engine.note_first_use
        before_task = policy.before_task
        after_task = policy.after_task
        heappush = heapq.heappush
        heappop = heapq.heappop
        overlap_keep = 1.0 - cfg.overlap_factor

        while n_done < n_total:
            free_at, wid = heappop(workers)
            drain_completions(free_at)
            if injector is not None:
                lost, evs = self._apply_capacity_losses(injector, engine, free_at)
                capacity_lost += lost
                emergency_evictions += evs
            if n_done >= n_total:
                break
            if len(scheduler) == 0:
                if not completions:
                    raise RuntimeError(
                        "deadlock: no ready tasks and no pending completions "
                        "(cyclic graph or lost wakeup)"
                    )
                next_t = completions[0][0]
                drain_completions(next_t)
                heappush(workers, (max(free_at, next_t), wid))
                continue

            task = scheduler.pop()
            now = max(free_at, ready_at.get(task.tid, 0.0))
            overhead_before = before_task(task, ctx, now)
            t0 = now + overhead_before

            avail = 0.0
            for obj, acc in task.accesses.items():
                if acc.accesses == 0:
                    continue
                if acc.mode.writes:
                    mark_dirty(obj)
                    a = available_at(obj.uid)
                    if a > t0:
                        if a > avail:
                            avail = a
                    note_first_use(obj.uid, t0)
                elif available_at(obj.uid) <= t0:
                    note_first_use(obj.uid, t0)
            start_exec = max(t0, avail)
            stall = start_exec - t0

            compute, mem = self._task_times(
                task, start_exec, running, working_set, engine
            )
            if compute >= mem:
                exec_time = compute + overlap_keep * mem
            else:
                exec_time = mem + overlap_keep * compute
            finish = start_exec + exec_time

            residency = {o.uid: placement_of(o).device for o in task.accesses}
            record = TaskRecord(
                task=task,
                worker=wid,
                start=now,
                finish=finish,
                compute_time=compute,
                memory_time=mem,
                overhead_time=overhead_before,
                stall_time=stall,
                residency=residency,
            )
            overhead_after = after_task(task, record, ctx)
            worker_free = finish + overhead_after
            record = TaskRecord(
                task=task,
                worker=wid,
                start=now,
                finish=worker_free,
                compute_time=compute,
                memory_time=mem,
                overhead_time=overhead_before + overhead_after,
                stall_time=stall,
                residency=residency,
            )
            records.append(record)

            touched = frozenset(placement_of(o).device for o in task.accesses)
            running.append((finish, task, touched))
            ctx._note_dispatch(task, finish)
            heappush(completions, (worker_free, task.tid))
            heappush(workers, (worker_free, wid))

        makespan = max((r.finish for r in records), default=0.0)
        trace = ExecutionTrace(
            records=records,
            migrations=engine,
            makespan=makespan,
            n_workers=cfg.n_workers,
        )
        if injector is not None:
            trace.faults = {
                "plan": injector.plan.label(),
                "injected_copy_failures": injector.injected_copy_failures,
                "copy_retries": engine.retry_count,
                "recovered_copies": engine.recovered_count,
                "failed_migrations": engine.failed_count,
                "capacity_lost_bytes": capacity_lost,
                "emergency_evictions": emergency_evictions,
                "degraded_time_s": injector.degraded_time(makespan),
                "degraded_slices": injector.degraded_slices(makespan),
                "events": [
                    {
                        "kind": e.kind,
                        "time": e.time,
                        "device": e.device,
                        "detail": e.detail,
                        "nbytes": e.nbytes,
                    }
                    for e in injector.events
                ],
            }
        return trace

    def _apply_capacity_losses(self, injector, engine, now):
        lost = 0
        evictions = 0
        for loss in injector.pop_capacity_losses(now):
            name = injector.device_name(loss.device)
            applied, evicted = self.hms.lose_capacity(name, loss.lose_bytes)
            for obj, was_dirty in evicted:
                if was_dirty:
                    engine.schedule(
                        obj.uid,
                        obj.size_bytes,
                        self.hms.dram,
                        self.hms.nvm,
                        request_time=now,
                        critical=True,
                    )
            injector.note_capacity_loss(loss, now, applied, len(evicted))
            lost += applied
            evictions += len(evicted)
        return lost, evictions

    # ------------------------------------------------------------------
    def _task_times(self, task, start, running, working_set, engine=None):
        cfg = self.config
        cutoff = start + 1e-15
        running[:] = [r for r in running if r[0] > cutoff]
        active: dict[str, int] = {}
        for _, _, devices in running:
            for d in devices:
                active[d] = active.get(d, 0) + 1

        inj = self.injector
        mem = 0.0
        if cfg.dram_cache is not None:
            n_str = sum(active.values()) + 1
            slow = cfg.contention.slowdown(n_str)
            for acc in task.accesses.values():
                if inj is None:
                    t_d = acc.memory_time(self.hms.dram, bw_slowdown=slow)
                    t_n = acc.memory_time(self.hms.nvm, bw_slowdown=slow)
                else:
                    t_d = acc.memory_time(
                        self.hms.dram,
                        bw_slowdown=slow * inj.bw_penalty(self.hms.dram.name, start),
                        lat_slowdown=inj.lat_penalty(self.hms.dram.name, start),
                    )
                    t_n = acc.memory_time(
                        self.hms.nvm,
                        bw_slowdown=slow * inj.bw_penalty(self.hms.nvm.name, start),
                        lat_slowdown=inj.lat_penalty(self.hms.nvm.name, start),
                    )
                mem += cfg.dram_cache.blend(t_d, t_n, working_set)
        else:
            device_of = self.hms.device_of
            slowdown = cfg.contention.slowdown
            in_flight_source = engine.in_flight_source if engine else None
            active_get = active.get
            for obj, acc in task.accesses.items():
                dev = device_of(obj)
                if in_flight_source is not None:
                    src_name = in_flight_source(obj.uid, start)
                    if src_name is not None and not acc.mode.writes:
                        dev = self._device_by_name(src_name, dev)
                slow = slowdown(active_get(dev.name, 0) + 1)
                if inj is None:
                    mem += acc.memory_time(dev, bw_slowdown=slow)
                else:
                    mem += acc.memory_time(
                        dev,
                        bw_slowdown=slow * inj.bw_penalty(dev.name, start),
                        lat_slowdown=inj.lat_penalty(dev.name, start),
                    )
        return task.compute_time, mem

    def _device_by_name(self, name, default):
        if name == self.hms.dram.name:
            return self.hms.dram
        if name == self.hms.nvm.name:
            return self.hms.nvm
        return default
