"""Sensitivity classification, benefit/cost models, type models."""

import pytest

from repro.core.adaptation import DeviationDetector
from repro.core.benefit import benefit_bandwidth, benefit_latency, movement_benefit
from repro.core.cost import eviction_cost, migration_cost
from repro.core.models import ObjectStats, SlotStats, TypeModel
from repro.core.sensitivity import Sensitivity, classify_bandwidth, object_bandwidth
from repro.memory.migration import copy_time
from repro.memory.presets import dram, nvm_bandwidth_scaled, nvm_latency_scaled, optane_pm
from repro.profiling.sampler import ObjectSample, SamplingProfiler
from repro.tasking.dataobj import DataObject
from repro.tasking.footprints import read_footprint, write_footprint
from repro.tasking.task import Task
from repro.util.units import MIB


class TestSensitivity:
    def test_thresholds(self):
        peak = 1e10
        assert classify_bandwidth(0.9 * peak, peak) is Sensitivity.BANDWIDTH
        assert classify_bandwidth(0.05 * peak, peak) is Sensitivity.LATENCY
        assert classify_bandwidth(0.5 * peak, peak) is Sensitivity.MIXED

    def test_custom_thresholds(self):
        peak = 1e10
        assert classify_bandwidth(0.5 * peak, peak, t1=0.4, t2=0.1) is Sensitivity.BANDWIDTH

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            classify_bandwidth(1, 1, t1=0.1, t2=0.5)

    def test_object_bandwidth(self):
        s = ObjectSample(loads=0, stores=0, misses=1000, active_fraction=0.5)
        # 1000 misses x 64 B over 0.5 x 1 s
        assert object_bandwidth(s, 1.0) == pytest.approx(1000 * 64 / 0.5)


class TestBenefitModels:
    def test_bandwidth_benefit_positive_on_slower_nvm(self):
        d, n = dram(), nvm_bandwidth_scaled(0.5)
        b = benefit_bandwidth(10_000, 5_000, n, d, cf_bw=1.0)
        assert b > 0

    def test_bandwidth_benefit_zero_when_equal(self):
        d = dram()
        n = d.scaled(name="same", kind=d.kind)
        assert benefit_bandwidth(1000, 1000, n, d, 1.0) == pytest.approx(0.0)

    def test_latency_benefit_scales_with_multiplier(self):
        d = dram()
        b4 = benefit_latency(1000, 0, nvm_latency_scaled(4.0), d, 1.0)
        b8 = benefit_latency(1000, 0, nvm_latency_scaled(8.0), d, 1.0)
        assert b8 == pytest.approx(b4 * 7 / 3, rel=0.01)  # (8-1)/(4-1)

    def test_rw_distinction_matters_on_optane(self):
        """Optane writes are 3x slower than reads: a write-heavy object's
        benefit is underestimated without the distinction."""
        d, o = dram(), optane_pm()
        with_rw = benefit_bandwidth(1000, 100_000, o, d, 1.0, distinguish_rw=True)
        without = benefit_bandwidth(1000, 100_000, o, d, 1.0, distinguish_rw=False)
        assert with_rw > 1.5 * without

    def test_movement_benefit_dispatches_on_class(self, calibration_bw):
        d, n = dram(), nvm_bandwidth_scaled(0.5)
        bw = movement_benefit(10_000, 0, Sensitivity.BANDWIDTH, n, d, calibration_bw)
        lat = movement_benefit(10_000, 0, Sensitivity.LATENCY, n, d, calibration_bw)
        mixed = movement_benefit(10_000, 0, Sensitivity.MIXED, n, d, calibration_bw)
        assert mixed == pytest.approx(max(bw, lat))

    def test_cf_factor_scales(self):
        d, n = dram(), nvm_bandwidth_scaled(0.5)
        assert benefit_bandwidth(1000, 0, n, d, 2.0) == pytest.approx(
            2 * benefit_bandwidth(1000, 0, n, d, 1.0)
        )


class TestCostModels:
    def test_migration_cost_fully_overlapped_is_zero(self):
        d, n = dram(), nvm_bandwidth_scaled(0.5)
        assert migration_cost(int(MIB), n, d, overlap_window_s=10.0) == 0.0

    def test_migration_cost_no_overlap_equals_copy(self):
        d, n = dram(), nvm_bandwidth_scaled(0.5)
        assert migration_cost(int(MIB), n, d, overlap_window_s=0.0) == pytest.approx(
            copy_time(int(MIB), n, d)
        )

    def test_eviction_cost_sums_victims(self):
        d, n = dram(), nvm_bandwidth_scaled(0.5)
        one = eviction_cost([int(MIB)], d, n)
        two = eviction_cost([int(MIB), int(MIB)], d, n)
        assert two == pytest.approx(2 * one, rel=0.01)


class TestTypeModel:
    def _profile(self, seed=0):
        a = DataObject(name="a", size_bytes=int(4 * MIB))
        b = DataObject(name="b", size_bytes=int(4 * MIB))
        t = Task(
            name="k",
            type_name="k",
            accesses={a: read_footprint(a.size_bytes), b: write_footprint(b.size_bytes)},
            compute_time=1e-4,
        )
        d = dram(int(64 * MIB))
        dur = sum(acc.memory_time(d) for acc in t.accesses.values()) + t.compute_time
        return SamplingProfiler(seed=seed).sample_task(t, dur, device_of=lambda o: d), dur

    def test_observe_builds_slots(self):
        m = TypeModel("k")
        p, dur = self._profile()
        m.observe(p)
        assert m.ready and m.n_profiles == 1
        assert len(m.slots) == 2
        assert m.mean_duration == pytest.approx(dur)
        assert m.slots[0].loads > 0 and m.slots[1].stores > 0

    def test_slot_fallback_for_extra_arity(self):
        m = TypeModel("k")
        p, _ = self._profile()
        m.observe(p)
        assert m.slot(10) is m.slots[-1]
        assert TypeModel("empty").slot(0).loads == 0

    def test_means_average_multiple_profiles(self):
        m = TypeModel("k")
        for seed in range(4):
            p, _ = self._profile(seed)
            m.observe(p)
        assert m.n_profiles == 4
        assert m.slots[0].n == 4

    def test_confidence_high_for_stable_slots(self):
        m = TypeModel("k")
        for seed in range(4):
            p, _ = self._profile(seed)
            m.observe(p)
        assert m.slots[0].confidence > 0.9

    def test_confidence_low_for_erratic_slots(self):
        s = SlotStats()
        for misses in (100.0, 100_000.0, 50.0, 80_000.0):
            s.update(0, 0, misses, 0.1, 1e9)
        assert s.confidence < 0.6

    def test_effective_counts_miss_vs_raw(self):
        s = SlotStats()
        s.update(loads=800, stores=200, misses=100, active=0.5, bw=1e9)
        ml, ms = s.effective_counts(True)
        assert ml == pytest.approx(80) and ms == pytest.approx(20)
        rl, rs = s.effective_counts(False)
        assert rl == 800 and rs == 200

    def test_track_duration_ewma(self):
        m = TypeModel("k")
        m.track_duration(1.0)
        assert m.recent_duration == pytest.approx(1.0)
        m.track_duration(2.0, alpha=0.5)
        assert m.recent_duration == pytest.approx(1.5)
        assert m.n_instances == 2


class TestObjectStats:
    def test_accumulation(self):
        st = ObjectStats(uid=1, size_bytes=100)
        st.add(10, 5, 8, 1e9, confidence=1.0, mem_seconds=0.1, dram_frac=0.0)
        st.add(10, 5, 8, 2e9, confidence=0.5, mem_seconds=0.3, dram_frac=1.0)
        assert st.loads == 20 and st.misses == 16
        assert st.bw_demand == 2e9  # max
        assert st.mem_seconds == pytest.approx(0.4)
        assert st.dram_frac == pytest.approx(0.75)  # weighted by mem_seconds
        assert 0.5 < st.confidence < 1.0


class TestDeviationDetector:
    def _feed_iterations(self, det, means, per_iter=4, type_name="t"):
        fired = []
        for it, mean in enumerate(means):
            for _ in range(per_iter):
                fired.append(det.observe(type_name, mean, iteration=it))
        return fired

    def test_no_trigger_on_stable_iterations(self):
        det = DeviationDetector()
        fired = self._feed_iterations(det, [1.0] * 12)
        assert not any(fired)

    def test_no_trigger_on_noisy_but_centered(self):
        det = DeviationDetector()
        fired = self._feed_iterations(det, [0.9, 1.1, 1.0, 0.95, 1.05] * 3)
        assert not any(fired)

    def test_trigger_on_step_change(self):
        det = DeviationDetector()
        fired = self._feed_iterations(det, [1.0] * 6 + [2.0] * 4)
        assert any(fired)

    def test_bimodal_instances_within_iteration_do_not_trigger(self):
        """Placement bimodality: fast and slow instances inside each
        iteration must average out."""
        det = DeviationDetector()
        fired = []
        for it in range(12):
            for dur in (0.5, 1.5, 0.5, 1.5):  # same mix every iteration
                fired.append(det.observe("t", dur, iteration=it))
        assert not any(fired)

    def test_needs_min_iterations_of_baseline(self):
        det = DeviationDetector(min_iterations=3)
        fired = self._feed_iterations(det, [1.0, 5.0, 1.0])
        assert not any(fired)

    def test_cooldown_limits_rate(self):
        det = DeviationDetector(cooldown_iterations=4)
        means = [1.0] * 5 + [3.0] * 8
        fired = self._feed_iterations(det, means)
        assert sum(fired) == 1  # baseline cleared; new regime re-baselines

    def test_non_iterative_tasks_never_trigger(self):
        det = DeviationDetector()
        fired = [det.observe("t", d, iteration=-1) for d in [1.0] * 6 + [9.0] * 6]
        assert not any(fired)

    def test_types_independent(self):
        det = DeviationDetector()
        self._feed_iterations(det, [1.0] * 8, type_name="a")
        fired = self._feed_iterations(det, [5.0] * 2, type_name="b")
        assert not any(fired)

    def test_reset(self):
        det = DeviationDetector()
        self._feed_iterations(det, [1.0] * 8)
        det.reset("t")
        fired = self._feed_iterations(det, [5.0] * 2)
        assert not any(fired)
