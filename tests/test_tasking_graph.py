"""Task graph: dependence inference, analyses, manual edges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasking.access import AccessMode, ObjectAccess
from repro.tasking.dataobj import DataObject
from repro.tasking.footprints import read_footprint, update_footprint, write_footprint
from repro.tasking.graph import DependenceKind, TaskGraph
from repro.tasking.task import Task
from repro.util.units import MIB


def mk_obj(name="o", mib=1.0):
    return DataObject(name=name, size_bytes=int(mib * MIB))


def mk_task(name, accesses, type_name=None):
    return Task(name=name, type_name=type_name or name, accesses=accesses)


class TestDependenceInference:
    def test_raw_dependence(self):
        g = TaskGraph()
        o = mk_obj()
        w = g.add(mk_task("w", {o: write_footprint(o.size_bytes)}))
        r = g.add(mk_task("r", {o: read_footprint(o.size_bytes)}))
        assert g.predecessors(r) == [w]
        kinds = {d.kind for d in g.dependences}
        assert DependenceKind.RAW in kinds

    def test_waw_dependence(self):
        g = TaskGraph()
        o = mk_obj()
        w1 = g.add(mk_task("w1", {o: write_footprint(o.size_bytes)}))
        w2 = g.add(mk_task("w2", {o: write_footprint(o.size_bytes)}))
        assert g.predecessors(w2) == [w1]

    def test_war_dependence(self):
        g = TaskGraph()
        o = mk_obj()
        g.add(mk_task("w0", {o: write_footprint(o.size_bytes)}))
        r = g.add(mk_task("r", {o: read_footprint(o.size_bytes)}))
        w = g.add(mk_task("w", {o: write_footprint(o.size_bytes)}))
        assert r in g.predecessors(w)
        assert DependenceKind.WAR in {d.kind for d in g.dependences}

    def test_independent_readers_are_parallel(self):
        g = TaskGraph()
        o = mk_obj()
        g.add(mk_task("w", {o: write_footprint(o.size_bytes)}))
        r1 = g.add(mk_task("r1", {o: read_footprint(o.size_bytes)}))
        r2 = g.add(mk_task("r2", {o: read_footprint(o.size_bytes)}))
        assert r1 not in g.predecessors(r2)
        assert r2 not in g.predecessors(r1)

    def test_disjoint_objects_no_edges(self):
        g = TaskGraph()
        t1 = g.add(mk_task("a", {mk_obj("x"): update_footprint(8, 8)}))
        t2 = g.add(mk_task("b", {mk_obj("y"): update_footprint(8, 8)}))
        assert not g.predecessors(t2) and not g.successors(t1)

    def test_infer_deps_false_skips_inference(self):
        g = TaskGraph()
        o = mk_obj()
        acc = ObjectAccess(AccessMode.WRITE, loads=0, stores=8, infer_deps=False)
        g.add(mk_task("w1", {o: acc}))
        w2 = g.add(mk_task("w2", {o: acc}))
        assert g.predecessors(w2) == []

    def test_manual_edge(self):
        g = TaskGraph()
        o = mk_obj()
        acc = ObjectAccess(AccessMode.WRITE, loads=0, stores=8, infer_deps=False)
        a = g.add(mk_task("a", {o: acc}))
        b = g.add(mk_task("b", {o: acc}))
        g.add_edge(a, b)
        assert g.predecessors(b) == [a]

    def test_manual_edge_must_point_forward(self):
        g = TaskGraph()
        o = mk_obj()
        a = g.add(mk_task("a", {o: update_footprint(8, 8)}))
        b = g.add(mk_task("b", {o: update_footprint(8, 8)}))
        with pytest.raises(ValueError):
            g.add_edge(b, a)

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        t = mk_task("t", {mk_obj(): update_footprint(8, 8)})
        g.add(t)
        with pytest.raises(ValueError):
            g.add(t)


class TestAnalyses:
    def chain(self, n=5):
        g = TaskGraph()
        o = mk_obj()
        for i in range(n):
            g.add(
                Task(
                    name=f"s{i}",
                    type_name="s",
                    accesses={o: update_footprint(o.size_bytes, o.size_bytes)},
                    compute_time=1.0,
                )
            )
        return g

    def test_topological_order_is_spawn_order_for_chain(self):
        g = self.chain()
        assert [t.name for t in g.topological_order()] == [t.name for t in g.tasks]

    def test_critical_path_of_chain(self):
        g = self.chain(5)
        length, path = g.critical_path(lambda t: t.compute_time)
        assert length == pytest.approx(5.0)
        assert len(path) == 5

    def test_critical_path_of_parallel_tasks(self):
        g = TaskGraph()
        for i in range(4):
            g.add(
                Task(
                    name=f"p{i}",
                    type_name="p",
                    accesses={mk_obj(f"o{i}"): update_footprint(8, 8)},
                    compute_time=float(i + 1),
                )
            )
        length, path = g.critical_path(lambda t: t.compute_time)
        assert length == pytest.approx(4.0)
        assert len(path) == 1

    def test_bottom_levels(self):
        g = self.chain(3)
        levels = g.bottom_levels(lambda t: 1.0)
        firsts = g.tasks[0]
        assert levels[firsts.tid] == pytest.approx(3.0)
        assert levels[g.tasks[-1].tid] == pytest.approx(1.0)

    def test_depths(self):
        g = self.chain(4)
        depths = g.depths()
        assert [depths[t.tid] for t in g.tasks] == [0, 1, 2, 3]

    def test_roots_and_objects(self):
        g = self.chain(3)
        assert len(g.roots()) == 1
        assert len(g.objects) == 1

    def test_tasks_using(self):
        g = TaskGraph()
        o1, o2 = mk_obj("a"), mk_obj("b")
        t1 = g.add(mk_task("t1", {o1: update_footprint(8, 8)}))
        g.add(mk_task("t2", {o2: update_footprint(8, 8)}))
        assert g.tasks_using(o1) == [t1]

    def test_to_networkx(self):
        g = self.chain(3)
        nx_g = g.to_networkx()
        assert nx_g.number_of_nodes() == 3
        assert nx_g.number_of_edges() == 2

    def test_validate(self):
        g = self.chain(3)
        g.validate()


@settings(max_examples=50, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 5), st.sampled_from(["read", "write", "readwrite"])),
        min_size=1,
        max_size=30,
    )
)
def test_dependence_inference_properties(accesses):
    """Property: the inferred graph is acyclic, edges point forward in
    spawn order, and any two tasks where the second writes an object the
    first touched are ordered."""
    g = TaskGraph()
    objs = [mk_obj(f"o{i}") for i in range(6)]
    for i, (oi, mode) in enumerate(accesses):
        m = AccessMode(mode)
        acc = ObjectAccess(
            m,
            loads=8 if m.reads else 0,
            stores=8 if m.writes else 0,
        )
        g.add(Task(name=f"t{i}", type_name="t", accesses={objs[oi]: acc}))
    g.validate()
    order = {t.tid: i for i, t in enumerate(g.tasks)}
    for t in g.tasks:
        for s in g.successors(t):
            assert order[s.tid] > order[t.tid]
    # conflict ordering: writer after any toucher of the same object
    for i, a in enumerate(g.tasks):
        for b in g.tasks[i + 1 :]:
            for obj in a.accesses:
                if obj in b.accesses and b.accesses[obj].mode.writes:
                    # b must be reachable from a
                    seen, stack = set(), [a]
                    while stack:
                        cur = stack.pop()
                        if cur is b:
                            stack = None
                            break
                        if cur.tid in seen:
                            continue
                        seen.add(cur.tid)
                        stack.extend(g.successors(cur))
                    assert stack is None, f"{a.name} and {b.name} unordered"
