"""Baseline placement policies."""

import pytest

from repro.baselines import (
    DRAMOnlyPolicy,
    HWCacheMode,
    NVMOnlyPolicy,
    RandomPolicy,
    SizeGreedyPolicy,
    StaticPlacementPolicy,
    XMemPolicy,
)
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.dataobj import DataObject
from repro.tasking.executor import Executor, ExecutorConfig
from repro.tasking.footprints import read_footprint
from repro.tasking.graph import TaskGraph
from repro.tasking.task import Task
from repro.util.units import MIB

from tests.helpers import dram_for, make_fork_join_graph, run_graph


def hot_cold_graph():
    g = TaskGraph()
    hot = DataObject(name="hot", size_bytes=int(4 * MIB))
    cold = DataObject(name="cold", size_bytes=int(4 * MIB))
    for i in range(6):
        g.add(
            Task(
                name=f"t{i}",
                type_name="t",
                accesses={
                    hot: read_footprint(hot.size_bytes, reuse=8.0),
                    cold: read_footprint(cold.size_bytes / 8),
                },
                compute_time=1e-4,
            )
        )
    return g, hot, cold


class TestTrivialPolicies:
    def test_nvm_only_keeps_everything_on_nvm(self, nvm_bw):
        g, hot, cold = hot_cold_graph()
        hms = HeterogeneousMemorySystem(dram(), nvm_bw)
        Executor(hms, ExecutorConfig()).run(g, NVMOnlyPolicy())
        assert not hms.in_dram(hot) and not hms.in_dram(cold)

    def test_dram_only_places_everything(self, nvm_bw):
        g, hot, cold = hot_cold_graph()
        hms = HeterogeneousMemorySystem(dram_for(g), nvm_bw)
        Executor(hms, ExecutorConfig()).run(g, DRAMOnlyPolicy())
        assert hms.in_dram(hot) and hms.in_dram(cold)

    def test_static_placement_pins_requested_set(self, nvm_bw):
        g, hot, cold = hot_cold_graph()
        hms = HeterogeneousMemorySystem(dram(), nvm_bw)
        Executor(hms, ExecutorConfig()).run(g, StaticPlacementPolicy({hot.uid}))
        assert hms.in_dram(hot) and not hms.in_dram(cold)

    def test_random_policy_deterministic_per_seed(self, nvm_bw):
        g, *_ = hot_cold_graph()
        r1 = run_graph(g, dram(), nvm_bw, RandomPolicy(seed=3))
        r2 = run_graph(g, dram(), nvm_bw, RandomPolicy(seed=3))
        assert r1.makespan == r2.makespan

    def test_size_greedy_prefers_small(self, nvm_bw):
        g = TaskGraph()
        small = DataObject(name="s", size_bytes=int(MIB))
        big = DataObject(name="b", size_bytes=int(200 * MIB))
        g.add(
            Task(
                name="t",
                type_name="t",
                accesses={
                    small: read_footprint(small.size_bytes),
                    big: read_footprint(big.size_bytes),
                },
            )
        )
        hms = HeterogeneousMemorySystem(dram(int(64 * MIB)), nvm_bw)
        Executor(hms, ExecutorConfig()).run(g, SizeGreedyPolicy())
        assert hms.in_dram(small) and not hms.in_dram(big)


class TestXMem:
    def test_places_hottest_density_first(self, nvm_bw):
        g, hot, cold = hot_cold_graph()
        hms = HeterogeneousMemorySystem(dram(int(5 * MIB)), nvm_bw)
        Executor(hms, ExecutorConfig()).run(g, XMemPolicy())
        assert hms.in_dram(hot)
        assert not hms.in_dram(cold)

    def test_never_migrates_at_runtime(self, nvm_bw):
        g, *_ = hot_cold_graph()
        tr = run_graph(g, dram(), nvm_bw, XMemPolicy())
        assert tr.migration_count == 0

    def test_beats_nvm_only_on_skewed_program(self, nvm_bw):
        g, *_ = hot_cold_graph()
        base = run_graph(g, dram(int(5 * MIB)), nvm_bw, NVMOnlyPolicy())
        x = run_graph(g, dram(int(5 * MIB)), nvm_bw, XMemPolicy())
        assert x.makespan < base.makespan


class TestHWCache:
    def test_configure_sets_model(self):
        cfg = HWCacheMode.configure(ExecutorConfig(), int(256 * MIB))
        assert cfg.dram_cache is not None
        assert cfg.dram_cache.dram_capacity_bytes == 256 * MIB

    def test_small_working_set_near_dram(self, nvm_bw):
        g = make_fork_join_graph(width=4, obj_mib=1.0)
        cfg = HWCacheMode.configure(ExecutorConfig(n_workers=4), int(256 * MIB))
        hms = HeterogeneousMemorySystem(dram(), nvm_bw)
        cached = Executor(hms, cfg).run(g, HWCacheMode())
        ref = run_graph(g, dram_for(g), nvm_bw, DRAMOnlyPolicy())
        assert cached.makespan <= ref.makespan * 1.35

    def test_large_working_set_near_nvm(self, nvm_bw):
        g = make_fork_join_graph(width=4, obj_mib=64.0)
        cfg = HWCacheMode.configure(ExecutorConfig(n_workers=4), int(16 * MIB))
        hms = HeterogeneousMemorySystem(dram(int(16 * MIB)), nvm_bw)
        cached = Executor(hms, cfg).run(g, HWCacheMode())
        nvm_run = run_graph(g, dram(int(16 * MIB)), nvm_bw, NVMOnlyPolicy())
        dram_run = run_graph(g, dram_for(g), nvm_bw, DRAMOnlyPolicy())
        assert cached.makespan > dram_run.makespan * 1.2
        assert cached.makespan <= nvm_run.makespan * 1.2
