"""Open-system stream mode: determinism, admission credits, drain
equivalence, and the RunSpec ``stream`` field's cache-key discipline."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.service import StreamSpec, resolve_stream, run_service
from repro.experiments.spec import RunSpec, canonical_json
from repro.memory.presets import nvm_bandwidth_scaled
from repro.tasking.stream import (
    AdmissionController,
    JobRequest,
    StreamDriver,
)
from repro.util.units import MIB
from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    TenantSpec,
    generate_arrivals,
)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def tenant_specs(names=("a", "b", "c")):
    return st.builds(
        TenantSpec,
        name=st.sampled_from(names),
        rate_hz=st.floats(min_value=0.0, max_value=200.0),
        arrival=st.sampled_from(ARRIVAL_KINDS),
        credit_mib=st.floats(min_value=1.0, max_value=1024.0),
        burst_duty=st.floats(min_value=0.05, max_value=1.0),
        burst_factor=st.floats(min_value=1.0, max_value=8.0),
    )


def tenant_rosters():
    return st.lists(
        tenant_specs(), min_size=1, max_size=3, unique_by=lambda t: t.name
    )


def job_batches():
    """Synthetic job streams with demands around the credit scale."""
    job = st.tuples(
        st.floats(min_value=0.0, max_value=1.0),  # submit_s
        st.sampled_from(("a", "b")),  # tenant
        st.integers(min_value=1, max_value=600),  # demand MiB
        st.floats(min_value=0.0, max_value=0.05),  # service_s
    )
    return st.lists(job, min_size=0, max_size=40)


def _drive(batch, credits_mib=(256, 512), round_interval_s=0.01, lanes=2):
    jobs = [
        JobRequest(i, tenant, submit, demand * MIB)
        for i, (submit, tenant, demand, _) in enumerate(batch)
    ]
    service = {i: s for i, (_, _, _, s) in enumerate(batch)}
    admission = AdmissionController(
        {"a": credits_mib[0] * MIB, "b": credits_mib[1] * MIB}
    )
    driver = StreamDriver(
        jobs,
        admission,
        job_runner=lambda job: service[job.job_id],
        round_interval_s=round_interval_s,
        lanes=lanes,
    )
    return driver.run()


# ----------------------------------------------------------------------
# Arrival generation
# ----------------------------------------------------------------------
class TestArrivals:
    @settings(max_examples=25, deadline=None)
    @given(tenants=tenant_rosters(), seed=st.integers(0, 1000))
    def test_same_seed_same_schedule(self, tenants, seed):
        a = generate_arrivals(tenants, horizon_s=0.5, seed=seed)
        b = generate_arrivals(tenants, horizon_s=0.5, seed=seed)
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(tenants=tenant_rosters(), seed=st.integers(0, 1000))
    def test_schedule_sorted_dense_and_bounded(self, tenants, seed):
        arrivals = generate_arrivals(tenants, horizon_s=0.5, seed=seed)
        assert [a.job_id for a in arrivals] == list(range(len(arrivals)))
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t < 0.5 for t in times)

    def test_tenant_streams_independent_of_roster(self):
        solo = TenantSpec(name="x", rate_hz=50.0)
        other = TenantSpec(name="y", rate_hz=80.0)
        alone = generate_arrivals([solo], horizon_s=0.3, seed=9)
        mixed = generate_arrivals([other, solo], horizon_s=0.3, seed=9)
        assert [a.time for a in alone] == [
            a.time for a in mixed if a.tenant == "x"
        ]

    def test_uniform_rate_and_spacing_exact(self):
        t = TenantSpec(name="u", rate_hz=10.0, arrival="uniform")
        arrivals = generate_arrivals([t], horizon_s=1.0, seed=0)
        assert len(arrivals) == 10
        gaps = {
            round(b.time - a.time, 12)
            for a, b in zip(arrivals, arrivals[1:])
        }
        assert gaps == {0.1}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="arrival kind"):
            TenantSpec(name="bad", arrival="lognormal")


# ----------------------------------------------------------------------
# Stream driver properties
# ----------------------------------------------------------------------
class TestStreamDriver:
    @settings(max_examples=40, deadline=None)
    @given(batch=job_batches())
    def test_credits_never_negative(self, batch):
        result = _drive(batch)
        for tenant, floor in result.credit_floor.items():
            assert floor >= 0, (tenant, floor)

    @settings(max_examples=40, deadline=None)
    @given(batch=job_batches())
    def test_conservation_and_ordering(self, batch):
        result = _drive(batch)
        assert len(result.jobs) == len(batch)
        done = [j for j in result.jobs if not j.rejected]
        assert len(done) + sum(result.rejected.values()) == len(batch)
        assert sum(result.admitted.values()) == len(done)
        for j in done:
            assert j.finish_s >= j.start_s >= j.submit_s
            assert j.slowdown >= 1.0 or j.service_s == 0.0

    @settings(max_examples=25, deadline=None)
    @given(batch=job_batches())
    def test_lanes_never_overlap(self, batch):
        result = _drive(batch, lanes=2)
        by_lane = {}
        for j in result.jobs:
            if not j.rejected:
                by_lane.setdefault(j.lane, []).append(j)
        for jobs in by_lane.values():
            # Tie-break equal starts by finish: a zero-duration job may
            # legitimately share its instant with the next job's start.
            jobs.sort(key=lambda j: (j.start_s, j.finish_s))
            for a, b in zip(jobs, jobs[1:]):
                assert b.start_s >= a.finish_s - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(batch=job_batches())
    def test_event_log_reproducible(self, batch):
        a = _drive(batch)
        b = _drive(batch)
        assert a.event_log == b.event_log
        assert a.jobs == b.jobs

    def test_overdraft_rejected_not_queued(self):
        batch = [(0.0, "a", 600, 0.01)]  # demand 600 MiB > 256 MiB credit
        result = _drive(batch)
        assert result.jobs[0].rejected
        assert result.rejected["a"] == 1
        assert result.credit_floor["a"] == 256 * MIB

    def test_release_overflow_is_an_error(self):
        adm = AdmissionController({"a": 64 * MIB})
        assert adm.try_admit("a", 64 * MIB)
        adm.release("a", 64 * MIB)
        with pytest.raises(RuntimeError, match="credit overflow"):
            adm.release("a", 1)


# ----------------------------------------------------------------------
# Full service runs (run_service over real closed-DAG sub-runs)
# ----------------------------------------------------------------------
def _service_spec(**stream_overrides):
    stream = {"horizon_s": 0.25, "seed": 13, **stream_overrides}
    return RunSpec(
        workload="heat",
        policy="tahoe",
        nvm=nvm_bandwidth_scaled(0.5),
        stream=stream,
    )


class TestRunService:
    def test_same_seed_byte_identical(self):
        a = run_service(_service_spec(), cache=False)
        b = run_service(_service_spec(), cache=False)
        assert canonical_json(a.summary) == canonical_json(b.summary)

    def test_different_seed_different_schedule(self):
        a = run_service(_service_spec(seed=13), cache=False)
        b = run_service(_service_spec(seed=14), cache=False)
        assert (
            a.summary["event_log_digest"] != b.summary["event_log_digest"]
        )

    def test_summaries_json_round_trip(self):
        r = run_service(_service_spec(), cache=False)
        assert r.summary == json.loads(json.dumps(r.summary))
        svc = r.summary["service"]
        assert svc["jobs_completed"] + svc["jobs_rejected"] == svc["jobs_submitted"]

    def test_drain_matches_closed_dag_executor(self):
        """Arrival rate -> 0: every job runs isolated, so its service
        time is exactly the closed-DAG makespan of the same graph and
        its wait is bounded by one round interval."""
        round_s = 0.005
        spec = _service_spec(
            tenants=[
                {
                    "name": "drain",
                    "rate_hz": 2.0,  # widely spaced vs the job length
                    "arrival": "uniform",
                    "credit_mib": 4096.0,
                }
            ],
            horizon_s=1.0,
            round_interval_s=round_s,
            lanes=1,
        )
        from repro.experiments.runner import run_and_summarize

        closed = run_and_summarize(spec.replace(stream=None))
        result = run_service(spec, cache=False)
        tenant = result.summary["tenants"]["drain"]
        assert tenant["rejected"] == 0
        assert result.summary["isolated_makespan_s"]["drain"] == pytest.approx(
            closed.makespan
        )
        assert tenant["mean_service_s"] == pytest.approx(closed.makespan)
        # Response = wait-for-next-round + service; never more than one
        # round of queueing when the system is idle.
        assert tenant["p99_response_s"] <= closed.makespan + round_s + 1e-9

    def test_execute_spec_refuses_stream_specs(self):
        from repro.experiments.runner import execute_spec

        with pytest.raises(ValueError, match="run_service"):
            execute_spec(_service_spec())


# ----------------------------------------------------------------------
# RunSpec integration: the omit-when-None cache-key discipline
# ----------------------------------------------------------------------
class TestStreamSpecField:
    def test_closed_spec_omits_stream(self):
        spec = RunSpec("heat", "tahoe", nvm_bandwidth_scaled(0.5))
        assert spec.stream is None
        assert "stream" not in spec.to_dict()

    def test_stream_changes_cache_key(self):
        closed = RunSpec("heat", "tahoe", nvm_bandwidth_scaled(0.5))
        streamed = closed.replace(stream={"horizon_s": 0.25})
        assert streamed.cache_key() != closed.cache_key()
        assert streamed.replace(stream=None).cache_key() == closed.cache_key()

    def test_round_trips_through_dict(self):
        spec = _service_spec()
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.cache_key() == spec.cache_key()

    def test_resolve_stream_forms(self):
        assert resolve_stream(None) is None
        assert resolve_stream(False) is None
        assert resolve_stream("off") is None
        assert isinstance(resolve_stream(True), StreamSpec)
        assert isinstance(resolve_stream("on"), StreamSpec)
        got = resolve_stream('{"horizon_s": 0.125, "lanes": 3}')
        assert got.horizon_s == 0.125 and got.lanes == 3
        with pytest.raises(ValueError, match="unknown stream spec fields"):
            resolve_stream({"bogus": 1})
        with pytest.raises(TypeError):
            resolve_stream(42)

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            StreamSpec(tenants=({"name": "t"}, {"name": "t"}))

    def test_label_mentions_stream(self):
        assert "stream(" in _service_spec().label()
