"""Trace exports: Chrome Trace Event JSON and the ASCII gantt."""

import json

from repro.core.manager import DataManagerPolicy
from repro.experiments.runner import execute_spec
from repro.experiments.spec import RunSpec
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.tracefmt import ascii_gantt, to_chrome_trace
from repro.util.units import MIB

from tests.helpers import dram_for, make_fork_join_graph, run_graph


def _migrating_trace():
    """A run with real migrations (tight DRAM forces helper-lane copies)."""
    graph = make_fork_join_graph(width=6, obj_mib=4.0)
    return run_graph(
        graph,
        dram(8 * MIB),
        nvm_bandwidth_scaled(0.25, 256 * MIB),
        policy=DataManagerPolicy(),
        workers=3,
    )


class TestChromeTrace:
    def test_valid_json_with_expected_structure(self):
        trace = _migrating_trace()
        doc = json.loads(to_chrome_trace(trace))
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        for e in events:
            assert e["ph"] in ("X", "M", "i")
            assert e["pid"] == 0
            if e["ph"] == "X":
                assert e["dur"] >= 0.0

    def test_rows_cover_workers_and_copy_lane(self):
        trace = _migrating_trace()
        events = json.loads(to_chrome_trace(trace))["traceEvents"]
        names = {e["tid"]: e["args"]["name"] for e in events if e["name"] == "thread_name"}
        for w in range(trace.n_workers):
            assert names[w] == f"worker {w}"
        assert names[trace.n_workers + 1] == "helper thread (copies)"
        # every task slice lands on a worker row, every copy on the lane row
        task_tids = {e["tid"] for e in events if e.get("cat") == "task"}
        assert task_tids <= set(range(trace.n_workers))
        copy_tids = {e["tid"] for e in events if e.get("cat") == "migration"}
        assert copy_tids == {trace.n_workers + 1}
        assert len([e for e in events if e.get("cat") == "migration"]) == len(
            trace.migrations.records
        )

    def test_no_fault_row_without_faults(self):
        trace = _migrating_trace()
        events = json.loads(to_chrome_trace(trace))["traceEvents"]
        assert not any(e.get("cat") == "fault" for e in events)
        assert not any(
            e["name"] == "thread_name" and e["args"]["name"] == "injected faults"
            for e in events
        )

    def test_fault_row_when_faulted(self):
        nvm = nvm_bandwidth_scaled(0.5)
        trace = execute_spec(
            RunSpec("cg", "tahoe", nvm, fast=True, faults="flaky-copies")
        )
        events = json.loads(to_chrome_trace(trace))["traceEvents"]
        assert any(
            e["name"] == "thread_name" and e["args"]["name"] == "injected faults"
            for e in events
        )
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(trace.faults["events"])
        # retried copies carry their attempt count
        attempts = [
            e["args"].get("attempts", 1)
            for e in events
            if e.get("cat") == "migration"
        ]
        assert max(attempts) > 1


class TestAsciiGantt:
    def test_deterministic_and_shaped(self):
        graph = make_fork_join_graph(width=6, obj_mib=2.0)
        trace = run_graph(graph, dram_for(graph), nvm_bandwidth_scaled(0.5), workers=3)
        text = ascii_gantt(trace, width=60)
        again = ascii_gantt(trace, width=60)
        assert text == again
        lines = text.splitlines()
        worker_lines = [ln for ln in lines if ln.startswith("worker")]
        assert len(worker_lines) == trace.n_workers
        for ln in worker_lines:
            assert "#" in ln
            assert len(ln.split("|")[1]) == 60
        assert "faults" not in text

    def test_copy_and_fault_rows(self):
        nvm = nvm_bandwidth_scaled(0.5)
        trace = execute_spec(RunSpec("cg", "tahoe", nvm, fast=True, faults="moderate"))
        text = ascii_gantt(trace, width=60)
        assert any(ln.startswith("copies") and "~" in ln for ln in text.splitlines())
        fault_lines = [ln for ln in text.splitlines() if ln.startswith("faults")]
        assert len(fault_lines) == 1
        assert "x" in fault_lines[0]  # whole-run NVM brown-out

    def test_empty_trace(self):
        from repro.tasking.trace import ExecutionTrace

        assert ascii_gantt(ExecutionTrace()) == "(empty trace)"
