"""Workload generators: structure, determinism, and characteristic shapes."""

import pytest

from repro.baselines import DRAMOnlyPolicy, NVMOnlyPolicy
from repro.memory.presets import dram, nvm_bandwidth_scaled, nvm_latency_scaled
from repro.tasking.access import POINTER_CHASE
from repro.workloads import WORKLOADS, build
from repro.util.units import MIB

from tests.helpers import dram_for, run_graph

#: Small parameters per workload so structural tests stay fast.
SMALL = {
    "cg": dict(n_chunks=4, iterations=2),
    "heat": dict(grid=4, iterations=3),
    "cholesky": dict(n_tiles=5),
    "lu": dict(n_tiles=4),
    "sparselu": dict(n_blocks=6),
    "health": dict(steps=3),
    "nbody": dict(n_tiles=4, steps=2),
    "mg": dict(iterations=2),
    "fft": dict(n_slices=8, iterations=1),
    "strassen": dict(depth=1),
    "randomdag": dict(layers=4, width=6),
    "bfs": dict(n_chunks=4, levels=3),
    "phaseshift": dict(steps=10, shift_at=5),
    "kmeans": dict(n_chunks=4, iterations=2),
    "stream": dict(n_tasks=3, iterations=2),
    "pchase": dict(n_tasks=3),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestEveryWorkload:
    def test_builds_and_validates(self, name):
        w = build(name, **SMALL[name])
        w.graph.validate()
        assert w.n_tasks > 0
        assert w.total_bytes > 0
        assert w.name == name

    def test_deterministic(self, name):
        w1 = build(name, **SMALL[name])
        w2 = build(name, **SMALL[name])
        assert w1.n_tasks == w2.n_tasks
        assert [t.type_name for t in w1.graph.tasks] == [
            t.type_name for t in w2.graph.tasks
        ]
        assert sorted(o.size_bytes for o in w1.objects) == sorted(
            o.size_bytes for o in w2.objects
        )

    def test_objects_are_fresh_per_build(self, name):
        w1 = build(name, **SMALL[name])
        w2 = build(name, **SMALL[name])
        assert {o.uid for o in w1.objects}.isdisjoint({o.uid for o in w2.objects})

    def test_runs_end_to_end(self, name):
        w = build(name, **SMALL[name])
        tr = run_graph(w.graph, dram_for(w.graph), nvm_bandwidth_scaled(0.5),
                       DRAMOnlyPolicy(), workers=4)
        tr.validate()
        assert len(tr.records) == w.n_tasks

    def test_static_refs_nonnegative(self, name):
        w = build(name, **SMALL[name])
        assert all(o.static_ref_count >= 0 for o in w.objects)


class TestRegistry:
    def test_known_names(self):
        expected = {
            "cg", "heat", "cholesky", "lu", "sparselu", "health", "nbody",
            "mg", "fft", "strassen", "randomdag", "stream", "pchase", "bfs", "kmeans", "phaseshift",
        }
        assert expected == set(WORKLOADS)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build("nope")


class TestCharacteristicShapes:
    """The properties the experiment suite depends on."""

    def _slowdown(self, name, nvm, **params):
        w = build(name, **params)
        ref = run_graph(w.graph, dram_for(w.graph), nvm, DRAMOnlyPolicy(), workers=8)
        w2 = build(name, **params)
        on_nvm = run_graph(w2.graph, dram(), nvm, NVMOnlyPolicy(), workers=8)
        return on_nvm.makespan / ref.makespan

    def test_heat_is_bandwidth_sensitive(self):
        assert self._slowdown("heat", nvm_bandwidth_scaled(0.5), **SMALL["heat"]) > 1.5
        assert self._slowdown("heat", nvm_latency_scaled(4.0), **SMALL["heat"]) < 1.1

    def test_health_is_latency_sensitive(self):
        assert self._slowdown("health", nvm_latency_scaled(4.0), **SMALL["health"]) > 1.4
        assert self._slowdown("health", nvm_bandwidth_scaled(0.5), **SMALL["health"]) < 1.2

    def test_cg_is_mixed(self):
        assert self._slowdown("cg", nvm_bandwidth_scaled(0.5), **SMALL["cg"]) > 1.25
        assert self._slowdown("cg", nvm_latency_scaled(4.0), **SMALL["cg"]) > 1.25

    def test_health_uses_pointer_chasing(self):
        w = build("health", **SMALL["health"])
        patterns = {
            a.pattern.name for t in w.graph.tasks for a in t.accesses.values()
        }
        assert POINTER_CHASE.name in patterns

    def test_fft_arrays_are_monolithic_and_partitionable(self):
        w = build("fft", **SMALL["fft"])
        big = [o for o in w.objects if o.partitionable]
        assert len(big) == 2
        assert all(o.size_bytes > 64 * MIB for o in big)

    def test_fft_stages_have_intra_stage_parallelism(self):
        w = build("fft", n_slices=8, iterations=1)
        depths = w.graph.depths()
        locals_ = [t for t in w.graph.tasks if t.type_name == "fft_local"]
        assert len({depths[t.tid] for t in locals_}) == 1  # all parallel

    def test_sparselu_has_fillin_without_static_refs(self):
        w = build("sparselu", n_blocks=8, density=0.3)
        fill = [o for o in w.objects if o.name.endswith("~fill")]
        assert fill, "expected fill-in blocks"
        assert all(o.static_ref_count == 0.0 for o in fill)

    def test_heat_variation_changes_task_compute(self):
        w = build("heat", grid=4, iterations=6, variation_at=3, hot_boost=4.0)
        early = [t for t in w.graph.tasks if t.iteration == 0]
        late = [t for t in w.graph.tasks if t.iteration == 5]
        assert max(t.compute_time for t in late) > 2 * max(
            t.compute_time for t in early
        )

    def test_cholesky_task_counts(self):
        n = 5
        w = build("cholesky", n_tiles=n)
        by_type = {}
        for t in w.graph.tasks:
            by_type[t.type_name] = by_type.get(t.type_name, 0) + 1
        assert by_type["potrf"] == n
        assert by_type["trsm"] == n * (n - 1) // 2
        assert by_type["syrk"] == n * (n - 1) // 2

    def test_lu_gemm_dominates(self):
        w = build("lu", n_tiles=5)
        gemms = sum(1 for t in w.graph.tasks if t.type_name == "gemm")
        assert gemms == sum((5 - k - 1) ** 2 for k in range(5))

    def test_mg_has_indivisible_large_tiles(self):
        w = build("mg", iterations=2)
        fine = [o for o in w.objects if o.name.startswith("grid0")]
        assert all(not o.partitionable for o in fine)
        assert all(o.size_bytes == 64 * MIB for o in fine)

    def test_stream_tasks_independent_within_iteration(self):
        w = build("stream", n_tasks=4, iterations=1)
        assert all(w.graph.in_degree(t) == 0 for t in w.graph.tasks)

    def test_pchase_is_serial_chain(self):
        w = build("pchase", n_tasks=5)
        depths = w.graph.depths()
        assert sorted(depths.values()) == list(range(5))
