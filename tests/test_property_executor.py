"""Property-based executor invariants over random task programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DRAMOnlyPolicy, NVMOnlyPolicy
from repro.core.manager import DataManagerPolicy
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.access import AccessMode, ObjectAccess, PATTERNS
from repro.tasking.dataobj import DataObject
from repro.tasking.executor import Executor, ExecutorConfig
from repro.tasking.graph import TaskGraph
from repro.tasking.task import Task
from repro.util.units import MIB


@st.composite
def random_program(draw):
    """A random but well-formed task program over a shared object pool."""
    n_objects = draw(st.integers(2, 6))
    objects = [
        DataObject(name=f"o{i}", size_bytes=draw(st.integers(1, 16)) * MIB)
        for i in range(n_objects)
    ]
    pattern_names = sorted(PATTERNS)
    graph = TaskGraph()
    n_tasks = draw(st.integers(1, 25))
    for i in range(n_tasks):
        k = draw(st.integers(1, min(3, n_objects)))
        idxs = draw(
            st.lists(
                st.integers(0, n_objects - 1), min_size=k, max_size=k, unique=True
            )
        )
        accesses = {}
        for oi in idxs:
            mode = draw(st.sampled_from(list(AccessMode)))
            touched = draw(st.integers(100, 200_000))
            accesses[objects[oi]] = ObjectAccess(
                mode,
                loads=touched if mode.reads else 0,
                stores=touched // 2 if mode.writes else 0,
                pattern=PATTERNS[draw(st.sampled_from(pattern_names))],
            )
        graph.add(
            Task(
                name=f"t{i}",
                type_name=f"k{i % 4}",
                accesses=accesses,
                compute_time=draw(st.floats(0, 1e-3)),
                iteration=i // 4,
            )
        )
    return graph


@settings(max_examples=40, deadline=None)
@given(graph=random_program(), workers=st.integers(1, 8))
def test_execution_invariants_nvm_only(graph, workers):
    hms = HeterogeneousMemorySystem(dram(), nvm_bandwidth_scaled(0.5))
    tr = Executor(hms, ExecutorConfig(n_workers=workers)).run(graph, NVMOnlyPolicy())
    tr.validate()
    assert len(tr.records) == len(graph.tasks)
    # dependence order respected in time
    finish = {r.task.tid: r.finish for r in tr.records}
    start = {r.task.tid: r.start for r in tr.records}
    for t in graph.tasks:
        for p in graph.predecessors(t):
            assert start[t.tid] >= finish[p.tid] - 1e-12
    hms.check_invariants()


@settings(max_examples=20, deadline=None)
@given(graph=random_program())
def test_dram_only_never_slower_than_nvm_only(graph):
    """DRAM strictly dominates this NVM config, so a DRAM-only run can
    never lose to an NVM-only run of the same program."""
    nvm = nvm_bandwidth_scaled(0.5)
    big = dram(max(2 * graph.total_object_bytes(), 64 * MIB))
    t_dram = Executor(
        HeterogeneousMemorySystem(big, nvm), ExecutorConfig(n_workers=4)
    ).run(graph, DRAMOnlyPolicy())
    t_nvm = Executor(
        HeterogeneousMemorySystem(dram(), nvm), ExecutorConfig(n_workers=4)
    ).run(graph, NVMOnlyPolicy())
    assert t_dram.makespan <= t_nvm.makespan + 1e-12


@settings(max_examples=15, deadline=None)
@given(graph=random_program())
def test_manager_respects_machine_invariants(graph):
    """The data manager may win or lose on adversarial random programs,
    but it must never corrupt machine state or break execution order."""
    hms = HeterogeneousMemorySystem(dram(int(16 * MIB)), nvm_bandwidth_scaled(0.5))
    tr = Executor(hms, ExecutorConfig(n_workers=4)).run(graph, DataManagerPolicy())
    tr.validate()
    hms.check_invariants()
    # every object is placed exactly once on exactly one device
    assert set(hms.residency()) == {o.uid for o in graph.objects}
