"""Property-based executor invariants over random task programs.

The second half of this module is the differential harness for the
structure-of-arrays executor rewrite: every random program is run through
both the production :class:`Executor` and the object-mode
:class:`tests.reference_executor.ReferenceExecutor` (the pre-rewrite
dispatch loop, kept verbatim), and the two traces must agree on every
``TaskRecord`` field bit-for-bit — with and without schedulers,
migrations, and fault injection.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DRAMOnlyPolicy, NVMOnlyPolicy
from repro.baselines.policies import BasePolicy
from repro.core.manager import DataManagerPolicy
from repro.faults import FaultInjector, resolve_plan
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.access import AccessMode, ObjectAccess, PATTERNS
from repro.tasking.dataobj import DataObject
from repro.tasking.executor import Executor, ExecutorConfig
from repro.tasking.graph import TaskGraph
from repro.tasking.task import Task
from repro.util.units import MIB

from tests.reference_executor import ReferenceExecutor


@st.composite
def random_program(draw):
    """A random but well-formed task program over a shared object pool."""
    n_objects = draw(st.integers(2, 6))
    objects = [
        DataObject(name=f"o{i}", size_bytes=draw(st.integers(1, 16)) * MIB)
        for i in range(n_objects)
    ]
    pattern_names = sorted(PATTERNS)
    graph = TaskGraph()
    n_tasks = draw(st.integers(1, 25))
    for i in range(n_tasks):
        k = draw(st.integers(1, min(3, n_objects)))
        idxs = draw(
            st.lists(
                st.integers(0, n_objects - 1), min_size=k, max_size=k, unique=True
            )
        )
        accesses = {}
        for oi in idxs:
            mode = draw(st.sampled_from(list(AccessMode)))
            touched = draw(st.integers(100, 200_000))
            accesses[objects[oi]] = ObjectAccess(
                mode,
                loads=touched if mode.reads else 0,
                stores=touched // 2 if mode.writes else 0,
                pattern=PATTERNS[draw(st.sampled_from(pattern_names))],
            )
        graph.add(
            Task(
                name=f"t{i}",
                type_name=f"k{i % 4}",
                accesses=accesses,
                compute_time=draw(st.floats(0, 1e-3)),
                iteration=i // 4,
            )
        )
    return graph


@settings(max_examples=40, deadline=None)
@given(graph=random_program(), workers=st.integers(1, 8))
def test_execution_invariants_nvm_only(graph, workers):
    hms = HeterogeneousMemorySystem(dram(), nvm_bandwidth_scaled(0.5))
    tr = Executor(hms, ExecutorConfig(n_workers=workers)).run(graph, NVMOnlyPolicy())
    tr.validate()
    assert len(tr.records) == len(graph.tasks)
    # dependence order respected in time
    finish = {r.task.tid: r.finish for r in tr.records}
    start = {r.task.tid: r.start for r in tr.records}
    for t in graph.tasks:
        for p in graph.predecessors(t):
            assert start[t.tid] >= finish[p.tid] - 1e-12
    hms.check_invariants()


@settings(max_examples=20, deadline=None)
@given(graph=random_program())
def test_dram_only_never_slower_than_nvm_only(graph):
    """DRAM strictly dominates this NVM config, so a DRAM-only run can
    never lose to an NVM-only run of the same program."""
    nvm = nvm_bandwidth_scaled(0.5)
    big = dram(max(2 * graph.total_object_bytes(), 64 * MIB))
    t_dram = Executor(
        HeterogeneousMemorySystem(big, nvm), ExecutorConfig(n_workers=4)
    ).run(graph, DRAMOnlyPolicy())
    t_nvm = Executor(
        HeterogeneousMemorySystem(dram(), nvm), ExecutorConfig(n_workers=4)
    ).run(graph, NVMOnlyPolicy())
    assert t_dram.makespan <= t_nvm.makespan + 1e-12


@settings(max_examples=15, deadline=None)
@given(graph=random_program())
def test_manager_respects_machine_invariants(graph):
    """The data manager may win or lose on adversarial random programs,
    but it must never corrupt machine state or break execution order."""
    hms = HeterogeneousMemorySystem(dram(int(16 * MIB)), nvm_bandwidth_scaled(0.5))
    tr = Executor(hms, ExecutorConfig(n_workers=4)).run(graph, DataManagerPolicy())
    tr.validate()
    hms.check_invariants()
    # every object is placed exactly once on exactly one device
    assert set(hms.residency()) == {o.uid for o in graph.objects}


# ----------------------------------------------------------------------
# SoA executor vs. object-mode reference: byte-identical traces.
# ----------------------------------------------------------------------


class _PromotingPolicy(BasePolicy):
    """Promotes every object on its first read to exercise migrations."""

    name = "promoting"

    def after_task(self, task, record, ctx):
        for obj, acc in task.accesses.items():
            if acc.mode.reads and not ctx.hms.in_dram(obj):
                if ctx.hms.dram_free_bytes() >= obj.size_bytes:
                    ctx.request_migration(obj, ctx.dram, record.finish)
        return 0.0


def _record_tuple(r):
    return (
        r.task.tid,
        r.worker,
        r.start,
        r.finish,
        r.compute_time,
        r.memory_time,
        r.overhead_time,
        r.stall_time,
        dict(r.residency),
    )


def _assert_traces_identical(got, want):
    assert len(got.records) == len(want.records)
    for g, w in zip(got.records, want.records):
        assert _record_tuple(g) == _record_tuple(w)
    assert got.makespan == want.makespan
    assert got.summary() == want.summary()
    assert getattr(got, "faults", None) == getattr(want, "faults", None)


def _run_pair(graph, make_policy, workers, *, scheduler=None, faults=None,
              dram_bytes=None):
    cfg = ExecutorConfig(n_workers=workers, scheduler=scheduler)
    nvm = nvm_bandwidth_scaled(0.5)
    traces = []
    for cls in (Executor, ReferenceExecutor):
        d = dram(dram_bytes) if dram_bytes is not None else dram()
        hms = HeterogeneousMemorySystem(d, nvm)
        injector = None
        if faults is not None:
            injector = FaultInjector.for_hms(resolve_plan(faults), hms)
        traces.append(cls(hms, cfg, injector=injector).run(graph, make_policy()))
    return traces


@settings(max_examples=25, deadline=None)
@given(graph=random_program(), workers=st.integers(1, 8))
def test_soa_matches_reference_nvm_only(graph, workers):
    got, want = _run_pair(graph, NVMOnlyPolicy, workers)
    _assert_traces_identical(got, want)


@settings(max_examples=15, deadline=None)
@given(
    graph=random_program(),
    workers=st.integers(1, 6),
    scheduler=st.sampled_from(["fifo", "critical-path", "memory-aware"]),
)
def test_soa_matches_reference_under_schedulers(graph, workers, scheduler):
    got, want = _run_pair(graph, DataManagerPolicy, workers, scheduler=scheduler)
    _assert_traces_identical(got, want)


@settings(max_examples=15, deadline=None)
@given(graph=random_program(), workers=st.integers(1, 6))
def test_soa_matches_reference_with_migrations(graph, workers):
    got, want = _run_pair(
        graph, _PromotingPolicy, workers, dram_bytes=int(16 * MIB)
    )
    _assert_traces_identical(got, want)


@settings(max_examples=15, deadline=None)
@given(
    graph=random_program(),
    workers=st.integers(1, 6),
    faults=st.sampled_from(["flaky-copies", "brownout", "moderate"]),
)
def test_soa_matches_reference_under_faults(graph, workers, faults):
    got, want = _run_pair(graph, DataManagerPolicy, workers, faults=faults)
    _assert_traces_identical(got, want)
