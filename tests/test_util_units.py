"""Unit-convention helpers."""

import pytest

from repro.util.units import (
    CACHELINE_BYTES,
    GBPS,
    GIB,
    KIB,
    MIB,
    MS,
    NS,
    US,
    bytes_per_second,
    format_bytes,
    format_time,
)


def test_cacheline_is_64_bytes():
    assert CACHELINE_BYTES == 64


def test_binary_size_ladder():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB


def test_time_ladder():
    assert NS == pytest.approx(1e-9)
    assert US == pytest.approx(1e-6)
    assert MS == pytest.approx(1e-3)


def test_bytes_per_second_decimal_gigabytes():
    assert bytes_per_second(10.0) == pytest.approx(10 * GBPS)
    assert bytes_per_second(0.5) == pytest.approx(5e8)


@pytest.mark.parametrize(
    "n,expect",
    [
        (512, "512 B"),
        (2048, "2.00 KiB"),
        (3 * MIB, "3.00 MiB"),
        (int(1.5 * GIB), "1.50 GiB"),
    ],
)
def test_format_bytes(n, expect):
    assert format_bytes(n) == expect


@pytest.mark.parametrize(
    "t,expect",
    [
        (2.0, "2.000 s"),
        (3e-3, "3.000 ms"),
        (4.5e-6, "4.500 us"),
        (120e-9, "120.0 ns"),
    ],
)
def test_format_time(t, expect):
    assert format_time(t) == expect


def test_format_time_handles_zero():
    assert format_time(0.0) == "0.0 ns"
