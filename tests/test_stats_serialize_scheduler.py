"""Seed-sweep statistics, workload serialization, memory-aware scheduler."""

import pytest

from repro.baselines import DRAMOnlyPolicy, NVMOnlyPolicy
from repro.core.manager import DataManagerPolicy
from repro.experiments.stats import bootstrap_ci, normalized_sweep, seed_sweep
from repro.memory.hms import HeterogeneousMemorySystem
from repro.memory.presets import dram, nvm_bandwidth_scaled
from repro.tasking.executor import Executor, ExecutorConfig
from repro.tasking.scheduler import MemoryAwarePolicy
from repro.workloads import build
from repro.workloads.serialize import workload_from_json, workload_to_json

from tests.helpers import dram_for, run_graph


class TestBootstrapCI:
    def test_single_sample_degenerate(self):
        s = bootstrap_ci([2.0])
        assert s.mean == s.lo == s.hi == 2.0

    def test_ci_brackets_mean(self):
        s = bootstrap_ci([1.0, 1.1, 0.9, 1.05, 0.95])
        assert s.lo <= s.mean <= s.hi
        assert s.n == 5

    def test_tighter_with_less_spread(self):
        tight = bootstrap_ci([1.0, 1.001, 0.999, 1.0], seed=1)
        wide = bootstrap_ci([0.5, 1.5, 0.7, 1.3], seed=1)
        assert (tight.hi - tight.lo) < (wide.hi - wide.lo)

    def test_deterministic(self):
        a = bootstrap_ci([1.0, 2.0, 3.0], seed=7)
        b = bootstrap_ci([1.0, 2.0, 3.0], seed=7)
        assert (a.lo, a.hi) == (b.lo, b.hi)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])


class TestSeedSweep:
    def test_seeds_change_manager_outcomes_slightly(self):
        nvm = nvm_bandwidth_scaled(0.5)
        values = seed_sweep("heat", "tahoe", nvm, seeds=(1, 2, 3), fast=True)
        assert len(values) == 3
        spread = (max(values) - min(values)) / min(values)
        assert spread < 0.2  # noise-robust, not noise-free

    def test_trivial_policy_is_seed_invariant(self):
        nvm = nvm_bandwidth_scaled(0.5)
        values = seed_sweep("heat", "nvm-only", nvm, seeds=(1, 2, 3), fast=True)
        assert max(values) == pytest.approx(min(values), rel=1e-12)

    def test_normalized_sweep_summary(self):
        nvm = nvm_bandwidth_scaled(0.5)
        s = normalized_sweep("heat", "tahoe", nvm, seeds=(1, 2, 3), fast=True)
        assert 1.0 <= s.mean <= 2.0
        assert s.lo <= s.mean <= s.hi


class TestSerialization:
    @pytest.mark.parametrize("name,params", [
        ("cholesky", dict(n_tiles=4)),
        ("fft", dict(n_slices=8, iterations=1)),   # manual span edges
        ("health", dict(steps=2)),
    ])
    def test_round_trip_preserves_structure(self, name, params):
        w = build(name, **params)
        w2 = workload_from_json(workload_to_json(w))
        assert w2.name == w.name
        assert w2.n_tasks == w.n_tasks
        assert len(w2.objects) == len(w.objects)
        # edge sets isomorphic under spawn-order indexing
        def edge_set(g):
            idx = {t.tid: i for i, t in enumerate(g.tasks)}
            return {
                (idx[t.tid], idx[s.tid]) for t in g.tasks for s in g.successors(t)
            }
        assert edge_set(w2.graph) == edge_set(w.graph)

    def test_round_trip_preserves_timing(self):
        nvm = nvm_bandwidth_scaled(0.5)
        w = build("cholesky", n_tiles=4)
        text = workload_to_json(w)
        w2 = workload_from_json(text)
        t1 = run_graph(w.graph, dram_for(w.graph), nvm, DRAMOnlyPolicy())
        t2 = run_graph(w2.graph, dram_for(w2.graph), nvm, DRAMOnlyPolicy())
        assert t2.makespan == pytest.approx(t1.makespan, rel=1e-12)

    def test_fresh_identities_on_load(self):
        w = build("health", steps=2)
        w2 = workload_from_json(workload_to_json(w))
        assert {o.uid for o in w.objects}.isdisjoint({o.uid for o in w2.objects})

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            workload_from_json('{"format": 99}')


class TestMemoryAwareScheduler:
    def test_completes_and_validates(self):
        nvm = nvm_bandwidth_scaled(0.5)
        w = build("heat", grid=5, iterations=4)
        hms = HeterogeneousMemorySystem(dram(), nvm)
        tr = Executor(hms, ExecutorConfig(n_workers=4, scheduler=MemoryAwarePolicy())).run(
            w.graph, DataManagerPolicy()
        )
        tr.validate()
        assert len(tr.records) == w.n_tasks

    def test_prefers_dram_resident_ready_tasks(self):
        from repro.tasking.dataobj import DataObject
        from repro.tasking.footprints import read_footprint
        from repro.tasking.task import Task
        from repro.util.units import MIB

        hms = HeterogeneousMemorySystem(dram(), nvm_bandwidth_scaled(0.5))
        hot = DataObject(name="hot", size_bytes=int(MIB))
        cold = DataObject(name="cold", size_bytes=int(MIB))
        hms.allocate(hot, hms.dram)
        hms.allocate(cold, hms.nvm)
        sched = MemoryAwarePolicy()
        sched.prepare(None)
        sched.bind(hms)
        t_cold = Task(name="c", type_name="c", accesses={cold: read_footprint(MIB)})
        t_hot = Task(name="h", type_name="h", accesses={hot: read_footprint(MIB)})
        sched.push(t_cold)
        sched.push(t_hot)
        assert sched.pop() is t_hot

    def test_no_worse_than_fifo_with_manager(self):
        nvm = nvm_bandwidth_scaled(0.5)

        def run(sched):
            w = build("cg", n_chunks=6, iterations=4)
            hms = HeterogeneousMemorySystem(dram(), nvm)
            return Executor(hms, ExecutorConfig(n_workers=8, scheduler=sched)).run(
                w.graph, DataManagerPolicy()
            ).makespan

        from repro.tasking.scheduler import FIFOPolicy

        assert run(MemoryAwarePolicy()) <= run(FIFOPolicy()) * 1.1
