"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists only so
``pip install -e . --no-use-pep517`` works on offline machines that lack
the ``wheel`` package required by the PEP 517 editable path.
"""

from setuptools import setup

setup()
